"""Tseitin transformation (Step 2 of the MPMCS pipeline).

The Tseitin transformation converts an arbitrary Boolean formula into an
*equisatisfiable* CNF in time and size polynomial in the formula size, by
introducing one auxiliary variable per internal gate and adding clauses that
constrain each auxiliary variable to be equivalent to the sub-formula it
names.  The paper uses exactly this construction to avoid the exponential
blow-up of a naive distributive CNF conversion.

The encoder supports all AST node types, including :class:`~repro.logic.formula.AtLeast`
(k-of-n voting gates), which are encoded with a sequential-counter (LTn)
cardinality construction rather than an exponential expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import FormulaError
from repro.logic.cnf import CNF, Literal
from repro.logic.formula import (
    And,
    AtLeast,
    Const,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    Xor,
)

__all__ = [
    "CNFFragment",
    "TseitinEncoder",
    "TseitinResult",
    "encode_fragment",
    "tseitin_encode",
]


@dataclass
class TseitinResult:
    """Output of a Tseitin encoding.

    Attributes
    ----------
    cnf:
        The equisatisfiable CNF.  Problem variables keep their names via the
        CNF name table; auxiliary gate variables are anonymous.
    root_literal:
        The literal representing the truth of the whole input formula.  A unit
        clause asserting this literal is already present when ``assert_root``
        was requested (the default), so satisfying assignments of ``cnf``
        correspond exactly to satisfying assignments of the input formula.
    var_map:
        Mapping from problem-variable name to CNF variable index.
    aux_vars:
        Auxiliary (gate) variable indices introduced by the encoding.
    """

    cnf: CNF
    root_literal: Literal
    var_map: Dict[str, int]
    aux_vars: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def num_aux_vars(self) -> int:
        return len(self.aux_vars)


class TseitinEncoder:
    """Stateful Tseitin encoder.

    A single encoder instance can encode several formulas into the same CNF
    (sharing the variable numbering), which the MaxSAT layer uses when it adds
    blocking clauses for top-k MPMCS enumeration.
    """

    def __init__(self, cnf: Optional[CNF] = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._aux_vars: List[int] = []
        # Structural cache so shared sub-formulas are encoded once.
        self._cache: Dict[Formula, Literal] = {}

    # -- public API -----------------------------------------------------------

    def encode(self, formula: Formula, *, assert_root: bool = True) -> TseitinResult:
        """Encode ``formula``; optionally assert its root literal as a unit clause."""
        root = self._encode_node(formula)
        if assert_root:
            self.cnf.add_clause([root])
        return TseitinResult(
            cnf=self.cnf,
            root_literal=root,
            var_map=dict(self.cnf.name_to_var),
            aux_vars=tuple(self._aux_vars),
        )

    def literal_for(self, name: str) -> Literal:
        """Return the positive literal of the problem variable called ``name``."""
        return self.cnf.var_for(name)

    # -- node encoders ---------------------------------------------------------

    def _new_aux(self) -> int:
        var = self.cnf.new_var()
        self._aux_vars.append(var)
        return var

    def _encode_node(self, node: Formula) -> Literal:
        cached = self._cache.get(node)
        if cached is not None:
            return cached

        if isinstance(node, Var):
            lit: Literal = self.cnf.var_for(node.name)
        elif isinstance(node, Const):
            lit = self._encode_const(node)
        elif isinstance(node, Not):
            lit = -self._encode_node(node.operand)
        elif isinstance(node, And):
            lit = self._encode_and([self._encode_node(op) for op in node.operands])
        elif isinstance(node, Or):
            lit = self._encode_or([self._encode_node(op) for op in node.operands])
        elif isinstance(node, Implies):
            lit = self._encode_or(
                [-self._encode_node(node.antecedent), self._encode_node(node.consequent)]
            )
        elif isinstance(node, Xor):
            lit = self._encode_xor([self._encode_node(op) for op in node.operands])
        elif isinstance(node, AtLeast):
            lit = self._encode_atleast(node.k, [self._encode_node(op) for op in node.operands])
        else:  # pragma: no cover - defensive
            raise FormulaError(f"unsupported formula node {type(node).__name__}")

        self._cache[node] = lit
        return lit

    def _encode_const(self, node: Const) -> Literal:
        # Constants get a dedicated variable pinned to the constant value.
        aux = self._new_aux()
        self.cnf.add_clause([aux] if node.value else [-aux])
        return aux

    def _encode_and(self, literals: Sequence[Literal]) -> Literal:
        if len(literals) == 1:
            return literals[0]
        gate = self._new_aux()
        # gate -> li  for every operand
        for lit in literals:
            self.cnf.add_clause([-gate, lit])
        # (l1 & ... & ln) -> gate
        self.cnf.add_clause([gate] + [-lit for lit in literals])
        return gate

    def _encode_or(self, literals: Sequence[Literal]) -> Literal:
        if len(literals) == 1:
            return literals[0]
        gate = self._new_aux()
        # li -> gate for every operand
        for lit in literals:
            self.cnf.add_clause([-lit, gate])
        # gate -> (l1 | ... | ln)
        self.cnf.add_clause([-gate] + list(literals))
        return gate

    def _encode_xor(self, literals: Sequence[Literal]) -> Literal:
        # Chain binary XOR gates: out_i = out_{i-1} xor l_i.
        current = literals[0]
        for lit in literals[1:]:
            gate = self._new_aux()
            a, b = current, lit
            # gate <-> a xor b
            self.cnf.add_clause([-gate, a, b])
            self.cnf.add_clause([-gate, -a, -b])
            self.cnf.add_clause([gate, -a, b])
            self.cnf.add_clause([gate, a, -b])
            current = gate
        return current

    def _encode_atleast(self, k: int, literals: Sequence[Literal]) -> Literal:
        """Encode a gate literal equivalent to ``sum(literals) >= k``.

        Uses a sequential counter: ``s[i][j]`` is true when at least ``j`` of
        the first ``i`` literals are true.  The returned gate literal is made
        logically *equivalent* to ``s[n][k]`` so the encoding remains correct
        when the gate appears under negation (as it does for success-tree
        complements of voting gates).
        """
        n = len(literals)
        if k <= 0:
            aux = self._new_aux()
            self.cnf.add_clause([aux])
            return aux
        if k > n:
            aux = self._new_aux()
            self.cnf.add_clause([-aux])
            return aux
        if k == 1:
            return self._encode_or(list(literals))
        if k == n:
            return self._encode_and(list(literals))

        # counts[j-1] holds the literal "at least j of the literals seen so far".
        counts: List[Optional[Literal]] = [None] * k
        for lit in literals:
            new_counts: List[Optional[Literal]] = list(counts)
            for j in range(k - 1, -1, -1):
                # at least (j+1) true after including `lit` holds when either it
                # already held, or exactly j held before and `lit` is true.
                prev_atleast_jp1 = counts[j]
                prev_atleast_j = counts[j - 1] if j > 0 else None
                options: List[Literal] = []
                if prev_atleast_jp1 is not None:
                    options.append(prev_atleast_jp1)
                if j == 0:
                    options.append(lit)
                    new_counts[j] = self._encode_or(options) if len(options) > 1 else options[0]
                else:
                    if prev_atleast_j is not None:
                        options.append(self._encode_and([prev_atleast_j, lit]))
                    if not options:
                        new_counts[j] = None
                    elif len(options) == 1:
                        new_counts[j] = options[0]
                    else:
                        new_counts[j] = self._encode_or(options)
            counts = new_counts
        result = counts[k - 1]
        if result is None:  # pragma: no cover - unreachable given k <= n
            raise FormulaError("sequential counter failed to produce an output literal")
        return result


def tseitin_encode(
    formula: Formula,
    *,
    cnf: Optional[CNF] = None,
    assert_root: bool = True,
) -> TseitinResult:
    """Convenience wrapper: encode ``formula`` with a fresh :class:`TseitinEncoder`."""
    encoder = TseitinEncoder(cnf)
    return encoder.encode(formula, assert_root=assert_root)


@dataclass(frozen=True)
class CNFFragment:
    """A relocatable Tseitin encoding of one sub-formula.

    The fragment's clauses are expressed over *local* variables ``1..num_vars``
    where the first ``len(inputs)`` variables are the fragment's interface
    inputs (in the order of :attr:`inputs`) and every higher variable is an
    internal auxiliary.  :meth:`instantiate` stitches the fragment into a host
    CNF by substituting arbitrary host *literals* for the inputs and
    offset-remapping the internals onto freshly allocated host variables, so
    one encoded fragment can be placed any number of times, in any CNF, at any
    variable offset.

    This is what makes per-gate encodings cacheable across the scenarios of a
    sweep: the incremental MaxSAT path stores one fragment per gate under the
    gate's structure-only subtree hash and re-assembles whole-tree encodings
    from cache hits instead of re-running Tseitin from scratch (see
    :func:`repro.core.encoder.assemble_structure_cnf`).

    Attributes
    ----------
    inputs:
        Interface input names, bound to local variables ``1..len(inputs)``.
    num_vars:
        Total number of local variables (inputs plus internals).
    clauses:
        The fragment's clauses over local variables.
    output:
        The local literal representing the truth of the encoded sub-formula.
        It is *not* asserted — the host decides what to do with it (feed it to
        a parent fragment, or assert it as the root).
    """

    inputs: Tuple[str, ...]
    num_vars: int
    clauses: Tuple[Tuple[Literal, ...], ...]
    output: Literal

    @property
    def num_internal_vars(self) -> int:
        return self.num_vars - len(self.inputs)

    def instantiate(
        self,
        literals: Mapping[str, Literal],
        *,
        new_var: Callable[[], int],
        add_clause: Callable[[Sequence[Literal]], Any],
    ) -> Literal:
        """Stitch this fragment into a host CNF; returns the host output literal.

        ``literals`` maps every input name to the host literal standing in for
        it (which may itself be negated — e.g. another fragment's output).
        Internal variables are allocated through ``new_var`` so the fragment
        relocates to whatever offset the host is at.
        """
        mapping: Dict[int, Literal] = {}
        for index, name in enumerate(self.inputs, start=1):
            try:
                mapping[index] = literals[name]
            except KeyError:
                raise FormulaError(
                    f"fragment instantiation is missing a literal for input {name!r}"
                ) from None
        for var in range(len(self.inputs) + 1, self.num_vars + 1):
            mapping[var] = new_var()

        def remap(literal: Literal) -> Literal:
            host = mapping[abs(literal)]
            return host if literal > 0 else -host

        for clause in self.clauses:
            add_clause([remap(literal) for literal in clause])
        return remap(self.output)

    # -- wire form -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable wire form (used by persistent artifact stores)."""
        return {
            "inputs": list(self.inputs),
            "num_vars": self.num_vars,
            "clauses": [list(clause) for clause in self.clauses],
            "output": self.output,
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "CNFFragment":
        """Inverse of :meth:`to_dict`."""
        return CNFFragment(
            inputs=tuple(document["inputs"]),
            num_vars=int(document["num_vars"]),
            clauses=tuple(tuple(int(l) for l in clause) for clause in document["clauses"]),
            output=int(document["output"]),
        )


def encode_fragment(formula: Formula, inputs: Sequence[str]) -> CNFFragment:
    """Encode ``formula`` as a relocatable :class:`CNFFragment`.

    ``inputs`` declares the interface: every variable the formula mentions
    must appear in it (unused declared inputs are allowed — they simply bind
    local variables no clause constrains).  The formula's root literal is
    returned unasserted so the fragment composes under negation and inside
    larger encodings.
    """
    ordered = list(dict.fromkeys(inputs))
    cnf = CNF()
    for name in ordered:
        cnf.var_for(name)
    encoder = TseitinEncoder(cnf)
    result = encoder.encode(formula, assert_root=False)
    declared = set(ordered)
    for name in cnf.name_to_var:
        if name not in declared:
            raise FormulaError(
                f"formula mentions variable {name!r} outside the declared fragment "
                f"inputs {tuple(ordered)!r}"
            )
    return CNFFragment(
        inputs=tuple(ordered),
        num_vars=cnf.num_vars,
        clauses=tuple(tuple(clause.literals) for clause in cnf),
        output=result.root_literal,
    )
