"""Tseitin transformation (Step 2 of the MPMCS pipeline).

The Tseitin transformation converts an arbitrary Boolean formula into an
*equisatisfiable* CNF in time and size polynomial in the formula size, by
introducing one auxiliary variable per internal gate and adding clauses that
constrain each auxiliary variable to be equivalent to the sub-formula it
names.  The paper uses exactly this construction to avoid the exponential
blow-up of a naive distributive CNF conversion.

The encoder supports all AST node types, including :class:`~repro.logic.formula.AtLeast`
(k-of-n voting gates), which are encoded with a sequential-counter (LTn)
cardinality construction rather than an exponential expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import FormulaError
from repro.logic.cnf import CNF, Literal
from repro.logic.formula import (
    And,
    AtLeast,
    Const,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    Xor,
)

__all__ = ["TseitinEncoder", "TseitinResult", "tseitin_encode"]


@dataclass
class TseitinResult:
    """Output of a Tseitin encoding.

    Attributes
    ----------
    cnf:
        The equisatisfiable CNF.  Problem variables keep their names via the
        CNF name table; auxiliary gate variables are anonymous.
    root_literal:
        The literal representing the truth of the whole input formula.  A unit
        clause asserting this literal is already present when ``assert_root``
        was requested (the default), so satisfying assignments of ``cnf``
        correspond exactly to satisfying assignments of the input formula.
    var_map:
        Mapping from problem-variable name to CNF variable index.
    aux_vars:
        Auxiliary (gate) variable indices introduced by the encoding.
    """

    cnf: CNF
    root_literal: Literal
    var_map: Dict[str, int]
    aux_vars: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def num_aux_vars(self) -> int:
        return len(self.aux_vars)


class TseitinEncoder:
    """Stateful Tseitin encoder.

    A single encoder instance can encode several formulas into the same CNF
    (sharing the variable numbering), which the MaxSAT layer uses when it adds
    blocking clauses for top-k MPMCS enumeration.
    """

    def __init__(self, cnf: Optional[CNF] = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._aux_vars: List[int] = []
        # Structural cache so shared sub-formulas are encoded once.
        self._cache: Dict[Formula, Literal] = {}

    # -- public API -----------------------------------------------------------

    def encode(self, formula: Formula, *, assert_root: bool = True) -> TseitinResult:
        """Encode ``formula``; optionally assert its root literal as a unit clause."""
        root = self._encode_node(formula)
        if assert_root:
            self.cnf.add_clause([root])
        return TseitinResult(
            cnf=self.cnf,
            root_literal=root,
            var_map=dict(self.cnf.name_to_var),
            aux_vars=tuple(self._aux_vars),
        )

    def literal_for(self, name: str) -> Literal:
        """Return the positive literal of the problem variable called ``name``."""
        return self.cnf.var_for(name)

    # -- node encoders ---------------------------------------------------------

    def _new_aux(self) -> int:
        var = self.cnf.new_var()
        self._aux_vars.append(var)
        return var

    def _encode_node(self, node: Formula) -> Literal:
        cached = self._cache.get(node)
        if cached is not None:
            return cached

        if isinstance(node, Var):
            lit: Literal = self.cnf.var_for(node.name)
        elif isinstance(node, Const):
            lit = self._encode_const(node)
        elif isinstance(node, Not):
            lit = -self._encode_node(node.operand)
        elif isinstance(node, And):
            lit = self._encode_and([self._encode_node(op) for op in node.operands])
        elif isinstance(node, Or):
            lit = self._encode_or([self._encode_node(op) for op in node.operands])
        elif isinstance(node, Implies):
            lit = self._encode_or(
                [-self._encode_node(node.antecedent), self._encode_node(node.consequent)]
            )
        elif isinstance(node, Xor):
            lit = self._encode_xor([self._encode_node(op) for op in node.operands])
        elif isinstance(node, AtLeast):
            lit = self._encode_atleast(node.k, [self._encode_node(op) for op in node.operands])
        else:  # pragma: no cover - defensive
            raise FormulaError(f"unsupported formula node {type(node).__name__}")

        self._cache[node] = lit
        return lit

    def _encode_const(self, node: Const) -> Literal:
        # Constants get a dedicated variable pinned to the constant value.
        aux = self._new_aux()
        self.cnf.add_clause([aux] if node.value else [-aux])
        return aux

    def _encode_and(self, literals: Sequence[Literal]) -> Literal:
        if len(literals) == 1:
            return literals[0]
        gate = self._new_aux()
        # gate -> li  for every operand
        for lit in literals:
            self.cnf.add_clause([-gate, lit])
        # (l1 & ... & ln) -> gate
        self.cnf.add_clause([gate] + [-lit for lit in literals])
        return gate

    def _encode_or(self, literals: Sequence[Literal]) -> Literal:
        if len(literals) == 1:
            return literals[0]
        gate = self._new_aux()
        # li -> gate for every operand
        for lit in literals:
            self.cnf.add_clause([-lit, gate])
        # gate -> (l1 | ... | ln)
        self.cnf.add_clause([-gate] + list(literals))
        return gate

    def _encode_xor(self, literals: Sequence[Literal]) -> Literal:
        # Chain binary XOR gates: out_i = out_{i-1} xor l_i.
        current = literals[0]
        for lit in literals[1:]:
            gate = self._new_aux()
            a, b = current, lit
            # gate <-> a xor b
            self.cnf.add_clause([-gate, a, b])
            self.cnf.add_clause([-gate, -a, -b])
            self.cnf.add_clause([gate, -a, b])
            self.cnf.add_clause([gate, a, -b])
            current = gate
        return current

    def _encode_atleast(self, k: int, literals: Sequence[Literal]) -> Literal:
        """Encode a gate literal equivalent to ``sum(literals) >= k``.

        Uses a sequential counter: ``s[i][j]`` is true when at least ``j`` of
        the first ``i`` literals are true.  The returned gate literal is made
        logically *equivalent* to ``s[n][k]`` so the encoding remains correct
        when the gate appears under negation (as it does for success-tree
        complements of voting gates).
        """
        n = len(literals)
        if k <= 0:
            aux = self._new_aux()
            self.cnf.add_clause([aux])
            return aux
        if k > n:
            aux = self._new_aux()
            self.cnf.add_clause([-aux])
            return aux
        if k == 1:
            return self._encode_or(list(literals))
        if k == n:
            return self._encode_and(list(literals))

        # counts[j-1] holds the literal "at least j of the literals seen so far".
        counts: List[Optional[Literal]] = [None] * k
        for lit in literals:
            new_counts: List[Optional[Literal]] = list(counts)
            for j in range(k - 1, -1, -1):
                # at least (j+1) true after including `lit` holds when either it
                # already held, or exactly j held before and `lit` is true.
                prev_atleast_jp1 = counts[j]
                prev_atleast_j = counts[j - 1] if j > 0 else None
                options: List[Literal] = []
                if prev_atleast_jp1 is not None:
                    options.append(prev_atleast_jp1)
                if j == 0:
                    options.append(lit)
                    new_counts[j] = self._encode_or(options) if len(options) > 1 else options[0]
                else:
                    if prev_atleast_j is not None:
                        options.append(self._encode_and([prev_atleast_j, lit]))
                    if not options:
                        new_counts[j] = None
                    elif len(options) == 1:
                        new_counts[j] = options[0]
                    else:
                        new_counts[j] = self._encode_or(options)
            counts = new_counts
        result = counts[k - 1]
        if result is None:  # pragma: no cover - unreachable given k <= n
            raise FormulaError("sequential counter failed to produce an output literal")
        return result


def tseitin_encode(
    formula: Formula,
    *,
    cnf: Optional[CNF] = None,
    assert_root: bool = True,
) -> TseitinResult:
    """Convenience wrapper: encode ``formula`` with a fresh :class:`TseitinEncoder`."""
    encoder = TseitinEncoder(cnf)
    return encoder.encode(formula, assert_root=assert_root)
