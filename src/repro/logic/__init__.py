"""Boolean formula substrate.

This package provides the propositional-logic foundation used by the rest of the
library:

* :mod:`repro.logic.formula` — an immutable Boolean formula AST (variables,
  constants, negation, conjunction, disjunction, implication, XOR and k-of-n
  threshold nodes) with structural helpers.
* :mod:`repro.logic.simplify` — constant folding, flattening, negation-normal-form
  and De Morgan complementation.
* :mod:`repro.logic.cnf` — the clause/literal model shared by the SAT and MaxSAT
  solvers.
* :mod:`repro.logic.tseitin` — the polynomial-time equisatisfiable CNF conversion
  used in Step 2 of the MPMCS pipeline.
* :mod:`repro.logic.dimacs` — DIMACS CNF and WCNF readers/writers for
  interoperability with external tools.
"""

from repro.logic.formula import (
    And,
    AtLeast,
    Const,
    FALSE,
    Formula,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
)
from repro.logic.cnf import CNF, Clause, Literal
from repro.logic.simplify import complement, flatten, simplify, to_nnf
from repro.logic.tseitin import (
    CNFFragment,
    TseitinEncoder,
    TseitinResult,
    encode_fragment,
    tseitin_encode,
)

__all__ = [
    "And",
    "AtLeast",
    "CNF",
    "CNFFragment",
    "Clause",
    "Const",
    "FALSE",
    "Formula",
    "Implies",
    "Literal",
    "Not",
    "Or",
    "TRUE",
    "TseitinEncoder",
    "TseitinResult",
    "Var",
    "Xor",
    "complement",
    "flatten",
    "simplify",
    "to_nnf",
    "encode_fragment",
    "tseitin_encode",
]
