"""DIMACS CNF and WCNF (weighted partial MaxSAT) readers and writers.

These routines make the library interoperable with external SAT/MaxSAT
solvers and with the standard MaxSAT Evaluation benchmark format.  The WCNF
dialect implemented here is the classic ``p wcnf <vars> <clauses> <top>``
format in which hard clauses carry the ``top`` weight and soft clauses carry a
smaller positive integer weight.

Because the MPMCS pipeline works with real-valued weights (−log probabilities),
:func:`write_wcnf` accepts floats and scales them to integers with a
configurable precision, mirroring what MPMCS4FTA does before handing instances
to integer-weight MaxSAT solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.exceptions import DimacsError
from repro.logic.cnf import CNF, Clause, Literal

__all__ = [
    "parse_dimacs",
    "write_dimacs",
    "parse_wcnf",
    "write_wcnf",
    "WcnfDocument",
]


@dataclass
class WcnfDocument:
    """In-memory representation of a parsed WCNF file."""

    num_vars: int
    top: int
    hard: List[Tuple[int, ...]]
    soft: List[Tuple[int, Tuple[int, ...]]]

    @property
    def num_clauses(self) -> int:
        return len(self.hard) + len(self.soft)


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS CNF document into a :class:`CNF`.

    Comment lines (``c ...``) are ignored.  The header ``p cnf V C`` is
    validated but a mismatching clause count only raises when clauses exceed
    the declared number of variables.
    """
    cnf = CNF()
    declared_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    pending: List[int] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {lineno}: malformed problem line {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: non-integer header values") from exc
            cnf.ensure_num_vars(declared_vars)
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: invalid literal {token!r}") from exc
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)

    if pending:
        # Tolerate a final clause not terminated by 0 (some generators do this).
        cnf.add_clause(pending)
    if declared_vars is not None and cnf.num_vars > declared_vars:
        raise DimacsError(
            f"clauses reference variable {cnf.num_vars} beyond declared count {declared_vars}"
        )
    if declared_clauses is not None and len(cnf) != declared_clauses:
        # The count mismatch is common in the wild; accept but do not fail.
        pass
    return cnf


def write_dimacs(cnf: CNF, *, comments: Optional[Sequence[str]] = None) -> str:
    """Serialise a :class:`CNF` to DIMACS text."""
    lines: List[str] = []
    for comment in comments or ():
        lines.append(f"c {comment}")
    for name, var in sorted(cnf.name_to_var.items(), key=lambda item: item[1]):
        lines.append(f"c var {var} = {name}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_wcnf(text: str) -> WcnfDocument:
    """Parse a classic-format WCNF document."""
    num_vars = 0
    top: Optional[int] = None
    hard: List[Tuple[int, ...]] = []
    soft: List[Tuple[int, Tuple[int, ...]]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 5 or parts[1] != "wcnf":
                raise DimacsError(f"line {lineno}: malformed wcnf problem line {line!r}")
            try:
                num_vars = int(parts[2])
                top = int(parts[4])
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: non-integer header values") from exc
            continue
        tokens = line.split()
        if top is None:
            raise DimacsError(f"line {lineno}: clause before problem line")
        try:
            weight = int(tokens[0])
            lits = tuple(int(tok) for tok in tokens[1:])
        except ValueError as exc:
            raise DimacsError(f"line {lineno}: invalid token in clause {line!r}") from exc
        if not lits or lits[-1] != 0:
            raise DimacsError(f"line {lineno}: clause not terminated by 0")
        lits = lits[:-1]
        if weight <= 0:
            raise DimacsError(f"line {lineno}: clause weight must be positive")
        if weight >= top:
            hard.append(lits)
        else:
            soft.append((weight, lits))
        for lit in lits:
            num_vars = max(num_vars, abs(lit))

    if top is None:
        raise DimacsError("missing 'p wcnf' problem line")
    return WcnfDocument(num_vars=num_vars, top=top, hard=hard, soft=soft)


def write_wcnf(
    hard: Iterable[Sequence[Literal]],
    soft: Iterable[Tuple[float, Sequence[Literal]]],
    *,
    num_vars: int,
    precision: int = 10**6,
    comments: Optional[Sequence[str]] = None,
) -> str:
    """Serialise a weighted partial MaxSAT instance to classic WCNF text.

    Real-valued soft weights are scaled by ``precision`` and rounded to
    integers; the ``top`` (hard) weight is set to one more than the sum of all
    scaled soft weights, as required by the format.
    """
    if precision <= 0:
        raise DimacsError("precision must be a positive integer")
    hard_list = [tuple(cl) for cl in hard]
    soft_list: List[Tuple[int, Tuple[int, ...]]] = []
    for weight, clause in soft:
        if weight <= 0 or not math.isfinite(weight):
            raise DimacsError(f"soft clause weight must be positive and finite, got {weight}")
        scaled = max(1, int(round(weight * precision)))
        soft_list.append((scaled, tuple(clause)))

    top = sum(w for w, _ in soft_list) + 1
    lines: List[str] = []
    for comment in comments or ():
        lines.append(f"c {comment}")
    lines.append(f"p wcnf {num_vars} {len(hard_list) + len(soft_list)} {top}")
    for clause in hard_list:
        lines.append(f"{top} " + " ".join(str(lit) for lit in clause) + " 0")
    for weight, clause in soft_list:
        lines.append(f"{weight} " + " ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
