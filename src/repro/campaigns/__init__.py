"""repro.campaigns — resumable sweep campaigns over the analysis service.

A campaign is a declarative DAG of named stages (scenario ``sweep``\\ s,
Pareto ``frontier`` probes, ``report`` merges) over one fault tree.  Stages
fan out into content-addressed chunks; a persistent completion ledger in the
artifact store records every finished chunk, so a killed-and-restarted
campaign resumes exactly where it stopped — completed chunks are served from
the ledger with zero recomputation, and the merged report is canonically
byte-identical to an uninterrupted run.

Entry points:

* :class:`CampaignSpec` / :func:`sweep_stage` / :func:`frontier_stage` /
  :func:`report_stage` — build the declarative spec (JSON round-trippable).
* :class:`CampaignRunner` / :func:`run_campaign` — execute with
  ledger-backed resume, per-chunk retry with capped exponential backoff,
  and optional process fan-out.
* :class:`CompletionLedger` — the per-chunk persistence layer (rides the
  :class:`~repro.service.store.DiskArtifactStore` entry format).
"""

from repro.campaigns.ledger import (
    CompletionLedger,
    campaign_state,
    chunk_record_key,
    state_record_key,
)
from repro.campaigns.runner import (
    CampaignOutcome,
    CampaignRunner,
    StageStats,
    materialise_tree,
    merge_scenario_reports,
    run_campaign,
)
from repro.campaigns.spec import (
    DEFAULT_CHUNK_SIZE,
    STAGE_KINDS,
    CampaignError,
    CampaignSpec,
    Chunk,
    StageSpec,
    content_hash,
    frontier_stage,
    report_stage,
    sweep_stage,
)

__all__ = [
    "CampaignError",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "Chunk",
    "CompletionLedger",
    "DEFAULT_CHUNK_SIZE",
    "STAGE_KINDS",
    "StageSpec",
    "StageStats",
    "campaign_state",
    "chunk_record_key",
    "content_hash",
    "frontier_stage",
    "materialise_tree",
    "merge_scenario_reports",
    "report_stage",
    "run_campaign",
    "state_record_key",
    "sweep_stage",
]
