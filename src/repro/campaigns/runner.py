"""Campaign execution: resume from the ledger, retry with backoff, merge.

:class:`CampaignRunner` walks a :class:`~repro.campaigns.spec.CampaignSpec`
in topological order and executes every stage whose dependencies completed.
Stage fan-out is per-chunk:

1. each chunk is probed in the :class:`~repro.campaigns.ledger.CompletionLedger`
   first — a hit returns the persisted result with **zero recomputation**;
2. missing chunks execute either in-process (sequentially, sharing one
   store-backed :class:`~repro.api.session.AnalysisSession`) or partitioned
   over a spawn :class:`~concurrent.futures.ProcessPoolExecutor` when the
   spec asks for ``workers > 1`` — the exact machinery the historical
   ``run_parallel_sweep`` used, now with the ledger written as every chunk
   lands so a crash loses at most the in-flight chunks;
3. failed chunks retry with capped exponential backoff
   (``retry_base_delay_s * 2**attempt``, capped at ``retry_max_delay_s``)
   up to ``max_retries`` extra attempts before the stage — and the campaign —
   fails.

Because chunks are contiguous, order-preserving slices analysed under the
campaign's single global configuration, the merged
:class:`~repro.scenarios.report.ScenarioReport` of a killed-and-resumed
campaign is canonically byte-identical to an uninterrupted run (and to a
sequential :class:`~repro.scenarios.sweep.SweepExecutor` pass over the same
grid) — only telemetry (timings, hit counters) differs.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.cache import ArtifactCache
from repro.api.session import AnalysisSession
from repro.exceptions import ReproError
from repro.fta.parsers.json_format import parse_json_document
from repro.fta.tree import FaultTree
from repro.observability import trace as _trace
from repro.observability.log import log_event
from repro.observability.metrics import get_metrics, scoped_metrics
from repro.reliability.assignment import ReliabilityAssignment
from repro.campaigns.ledger import CompletionLedger
from repro.campaigns.spec import CampaignError, CampaignSpec, Chunk, StageSpec
from repro.scenarios.planner import pareto_frontier, validate_actions
from repro.scenarios.report import ScenarioReport
from repro.scenarios.scenario import Scenario
from repro.scenarios.serialization import (
    SerializationError,
    actions_from_spec,
    assignment_from_documents,
    scenario_to_dict,
    scenarios_from_spec,
)
from repro.scenarios.sweep import SweepExecutor

__all__ = [
    "CampaignOutcome",
    "CampaignRunner",
    "StageStats",
    "materialise_tree",
    "merge_scenario_reports",
    "run_campaign",
]


def materialise_tree(
    tree_document: Dict[str, Any],
    models: Optional[Dict[str, Any]] = None,
    mission_time: Optional[float] = None,
) -> Tuple[FaultTree, Optional[ReliabilityAssignment], Optional[float]]:
    """Decode a tree document, materialising reliability models if present.

    With a ``models`` section (event name -> tagged failure-model document)
    and a ``mission_time``, the analysed tree is the
    :class:`~repro.reliability.assignment.ReliabilityAssignment` frozen at
    that time; the assignment is returned alongside so maintenance scenarios
    can bind to it.  Shared by the campaign runner and the service's job
    payload decoding.
    """
    if not isinstance(tree_document, dict):
        raise CampaignError("campaign needs a 'tree' JSON document")
    tree = parse_json_document(tree_document)
    if mission_time is not None:
        if not isinstance(mission_time, (int, float)) or isinstance(mission_time, bool):
            raise CampaignError(f"'mission_time' must be a number, got {mission_time!r}")
        mission_time = float(mission_time)
    if models is None:
        return tree, None, mission_time
    if mission_time is None:
        raise CampaignError("a spec with 'models' needs a numeric 'mission_time'")
    assignment = assignment_from_documents(tree, models)
    return assignment.tree_at(mission_time), assignment, mission_time


def _merge_cache_stats(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum per-worker :meth:`ArtifactCache.stats` snapshots field-wise."""
    merged: Dict[str, Any] = {
        "entries": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "by_kind": {},
    }
    for part in parts:
        for counter in ("entries", "hits", "misses", "evictions", "store_hits", "store_misses"):
            if counter in part:
                merged[counter] = merged.get(counter, 0) + part[counter]
        for kind, counters in part.get("by_kind", {}).items():
            slot = merged["by_kind"].setdefault(kind, {})
            for counter, value in counters.items():
                slot[counter] = slot.get(counter, 0) + value
    return merged


def merge_scenario_reports(reports: Sequence[ScenarioReport]) -> ScenarioReport:
    """Merge per-chunk sweep reports (in chunk order) into one report.

    Every chunk analysed the same base tree with the same configuration, so
    the base sections are interchangeable; the first report contributes them,
    the outcomes concatenate in order, and the cache statistics sum.
    """
    if not reports:
        raise ReproError("cannot merge an empty list of scenario reports")
    head = reports[0]
    merged = ScenarioReport(
        tree_name=head.tree_name,
        analyses=head.analyses,
        backend=head.backend,
        incremental=head.incremental,
        base=head.base,
        base_top_event=head.base_top_event,
        base_mpmcs_events=head.base_mpmcs_events,
        base_mpmcs_probability=head.base_mpmcs_probability,
    )
    for report in reports:
        merged.outcomes.extend(report.outcomes)
    merged.cache_stats = _merge_cache_stats([report.cache_stats for report in reports])
    merged.total_time_s = sum(report.total_time_s for report in reports)
    return merged


def _open_store(path: Optional[str]) -> Any:
    # Lazy: repro.campaigns must stay importable without (and before)
    # repro.service — the service imports *us*.
    if path is None:
        return None
    from repro.service.store import DiskArtifactStore

    return DiskArtifactStore(path)


def _sweep_chunk_worker(
    payload: "Tuple[int, FaultTree, Sequence[Scenario], Dict[str, Any]]",
) -> Tuple[int, ScenarioReport, Dict[str, Any]]:
    """Process-pool entry point: run one scenario chunk, store-backed.

    The chunk runs against a fresh scoped metrics registry whose snapshot is
    returned alongside the report, so the parent process can merge every
    child's counters into its own registry (``/metrics`` then covers the
    whole fan-out).  Scoping per chunk — not per process — means a pool
    worker reused for several chunks never double-reports.
    """
    index, tree, scenarios, config = payload
    with scoped_metrics() as registry:
        cache = ArtifactCache(
            max_entries=config.get("cache_max_entries"),
            backend=_open_store(config.get("store_path")),
        )
        executor = SweepExecutor(
            AnalysisSession(cache=cache),
            incremental=config.get("incremental", True),
            backend=config.get("backend", "mocus"),
            exact_top_event=config.get("exact_top_event", True),
        )
        report = executor.run(
            tree,
            scenarios,
            analyses=config.get("analyses", ("mpmcs", "top_event")),
            top_k=config.get("top_k", 5),
            samples=config.get("samples", 0),
            seed=config.get("seed", 0),
        )
    return index, report, registry.snapshot()


@dataclass
class StageStats:
    """Execution accounting of one stage — the proof of (non-)recomputation."""

    name: str
    kind: str
    status: str = "pending"
    chunks_total: int = 0
    ledger_hits: int = 0
    executed: int = 0
    attempts: int = 0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "chunks_total": self.chunks_total,
            "ledger_hits": self.ledger_hits,
            "executed": self.executed,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class CampaignOutcome:
    """Everything a finished (or failed) campaign run produced."""

    campaign_id: str
    name: str
    status: str
    stage_results: Dict[str, Any] = field(default_factory=dict)
    stage_stats: List[StageStats] = field(default_factory=list)
    ledger_stats: Dict[str, int] = field(default_factory=dict)
    total_time_s: float = 0.0
    error: Optional[str] = None

    def report(self) -> Optional[ScenarioReport]:
        """The merged report of the first sweep stage, if one completed."""
        for value in self.stage_results.values():
            if isinstance(value, ScenarioReport):
                return value
        return None

    @property
    def ledger_hits(self) -> int:
        return sum(stats.ledger_hits for stats in self.stage_stats)

    @property
    def executed_chunks(self) -> int:
        return sum(stats.executed for stats in self.stage_stats)

    def result_document(self) -> Dict[str, Any]:
        """JSON-ready result: stage results with reports in dict form."""
        stages: Dict[str, Any] = {}
        for name, value in self.stage_results.items():
            stages[name] = value.to_dict() if isinstance(value, ScenarioReport) else value
        return {
            "kind": "campaign",
            "campaign": self.campaign_id,
            "name": self.name,
            "status": self.status,
            "stages": stages,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready status document (results are fetched separately)."""
        return {
            "campaign": self.campaign_id,
            "name": self.name,
            "status": self.status,
            "stages": [stats.to_dict() for stats in self.stage_stats],
            "ledger": dict(self.ledger_stats),
            "total_time_s": self.total_time_s,
            "error": self.error,
        }


class CampaignRunner:
    """Executes campaign specs with ledger-backed resume.

    Parameters
    ----------
    store:
        :class:`~repro.service.store.DiskArtifactStore` (or compatible
        backend) holding both the completion ledger and the shared analysis
        artifacts; ``None`` disables persistence (the campaign still runs,
        retries and merges — it just cannot survive the process).
    store_path:
        Convenience alternative to ``store``.
    session:
        Optional pre-built session for in-process chunk execution; a fresh
        store-backed session is created otherwise.
    sleep:
        Injection point for the backoff delay (tests pass a recorder).
    before_chunk:
        Optional hook called as ``before_chunk(stage_name, chunk_index,
        attempt)`` immediately before each in-process chunk attempt; raising
        makes the attempt fail.  Exists for fault-injection tests.
    stop_check:
        Optional zero-argument callable invoked at every chunk boundary;
        raise from it to abort the campaign cooperatively (the service wires
        the job's cancellation/timeout guard here).
    on_outcome:
        Optional per-scenario progress hook, ``on_outcome(outcome)`` with a
        :class:`~repro.scenarios.report.ScenarioOutcome`.  Inline chunks call
        it live as each scenario lands; process-executed and ledger-replayed
        chunks call it once per contained outcome when the whole chunk
        arrives.  Delivery is **at least once** (a chunk retried after a
        partial failure replays its outcomes) and ordered only within a
        chunk — consumers key on ``outcome.scenario`` for exact-once views.
        The service streams these to ``GET /sweeps/<id>/stream``.
    """

    def __init__(
        self,
        *,
        store: Any = None,
        store_path: Optional[str] = None,
        session: Optional[AnalysisSession] = None,
        cache_max_entries: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        before_chunk: Optional[Callable[[str, int, int], None]] = None,
        stop_check: Optional[Callable[[], None]] = None,
        on_outcome: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if store is None and store_path is not None:
            store = _open_store(store_path)
        self.store = store
        self.store_path = store_path if store_path is not None else (
            str(store.root) if store is not None and hasattr(store, "root") else None
        )
        self.cache_max_entries = cache_max_entries
        self._session = session
        self._sleep = sleep
        self._before_chunk = before_chunk
        self._stop_check = stop_check
        self._on_outcome = on_outcome

    # -- session ----------------------------------------------------------------------

    @property
    def session(self) -> AnalysisSession:
        if self._session is None:
            cache = ArtifactCache(max_entries=self.cache_max_entries, backend=self.store)
            self._session = AnalysisSession(cache=cache)
        return self._session

    def _check_stop(self) -> None:
        if self._stop_check is not None:
            self._stop_check()

    def _replay_outcomes(self, report: Any) -> None:
        """Feed a whole chunk's outcomes to the progress hook (see __init__)."""
        if self._on_outcome is None:
            return
        for outcome in getattr(report, "outcomes", ()):
            self._on_outcome(outcome)

    # -- public API -------------------------------------------------------------------

    def run(
        self,
        spec: CampaignSpec,
        *,
        tree: Optional[FaultTree] = None,
        scenario_overrides: Optional[Dict[str, List[Scenario]]] = None,
    ) -> CampaignOutcome:
        """Execute ``spec``, resuming every chunk the ledger already holds.

        ``tree`` and ``scenario_overrides`` let an embedding caller (the
        refactored ``run_parallel_sweep``) supply *live* objects instead of
        re-decoding the spec's JSON; overridden sweep stages whose scenarios
        have no JSON form (e.g. bound maintenance patches) run **unledgered**
        — executed every time, never persisted — because a content address
        cannot be computed for them.
        """
        campaign_id = spec.campaign_id()
        ledger = CompletionLedger(self.store, campaign_id)
        outcome = CampaignOutcome(campaign_id=campaign_id, name=spec.name, status="running")
        started = time.perf_counter()

        stats_by_name: Dict[str, StageStats] = {}
        for stage in spec.stages:
            stats_by_name[stage.name] = StageStats(name=stage.name, kind=stage.kind)
        outcome.stage_stats = [stats_by_name[stage.name] for stage in spec.stages]

        ledger.store_state(
            status="running",
            spec_document=spec.to_dict(),
            name=spec.name,
            stages={name: stats.to_dict() for name, stats in stats_by_name.items()},
        )

        if tree is None:
            tree, assignment, mission_time = materialise_tree(
                spec.tree, spec.models, spec.mission_time
            )
        else:
            _, assignment, mission_time = (tree, None, spec.mission_time)
            if spec.models is not None:
                _, assignment, mission_time = materialise_tree(
                    spec.tree, spec.models, spec.mission_time
                )

        try:
            with _trace.span("campaign", spec=spec.name, campaign=campaign_id):
                for stage in spec.topological_order():
                    stats = stats_by_name[stage.name]
                    stats.status = "running"
                    self._check_stop()
                    override = (scenario_overrides or {}).get(stage.name)
                    with _trace.span(f"stage:{stage.name}", kind=stage.kind):
                        if stage.kind == "sweep":
                            result = self._run_sweep_stage(
                                spec, stage, tree, assignment, mission_time, ledger, stats,
                                live_scenarios=override,
                            )
                        elif stage.kind == "frontier":
                            result = self._run_frontier_stage(spec, stage, tree, ledger, stats)
                        else:
                            result = self._run_report_stage(
                                spec, stage, outcome.stage_results, ledger, stats
                            )
                    stats.status = "done"
                    outcome.stage_results[stage.name] = result
        except ReproError as exc:
            failed = next(
                (s for s in outcome.stage_stats if s.status == "running"), None
            )
            if failed is not None:
                failed.status = "failed"
                failed.error = str(exc)
            outcome.status = "failed"
            outcome.error = str(exc)
            outcome.ledger_stats = ledger.stats()
            outcome.total_time_s = time.perf_counter() - started
            ledger.store_state(
                status="failed",
                spec_document=spec.to_dict(),
                name=spec.name,
                error=str(exc),
                stages={name: stats.to_dict() for name, stats in stats_by_name.items()},
            )
            raise

        outcome.status = "done"
        outcome.ledger_stats = ledger.stats()
        outcome.total_time_s = time.perf_counter() - started
        ledger.store_state(
            status="done",
            spec_document=spec.to_dict(),
            name=spec.name,
            stages={name: stats.to_dict() for name, stats in stats_by_name.items()},
            result=outcome.result_document(),
        )
        return outcome

    # -- status (no execution) ----------------------------------------------------------

    def status(self, spec: CampaignSpec) -> Dict[str, Any]:
        """Ledger-derived progress of ``spec`` without executing anything.

        Chunk hashes are recomputed from the spec (they are deterministic),
        then probed against the ledger; the result is the per-stage
        ``chunks_total`` / ``chunks_done`` progress a status endpoint shows.
        """
        campaign_id = spec.campaign_id()
        ledger = CompletionLedger(self.store, campaign_id)
        state = ledger.load_state()
        stages: List[Dict[str, Any]] = []
        try:
            tree, assignment, mission_time = materialise_tree(
                spec.tree, spec.models, spec.mission_time
            )
        except ReproError:
            tree = assignment = mission_time = None  # spec stored before a format change
        for stage in spec.stages:
            entry: Dict[str, Any] = {"name": stage.name, "kind": stage.kind}
            try:
                chunks = self._stage_chunks(spec, stage, assignment, mission_time)
            except ReproError:
                chunks = None
            if chunks is None:
                entry["chunks_total"] = None
                entry["chunks_done"] = None
            else:
                hashes = [chunk.hash for chunk in chunks]
                done = ledger.completed_chunks(hashes)
                entry["chunks_total"] = len(chunks)
                entry["chunks_done"] = len(done)
            stages.append(entry)
        return {
            "campaign": campaign_id,
            "name": spec.name,
            "status": (state or {}).get("status", "unknown"),
            "error": (state or {}).get("error"),
            "stages": stages,
            "persistent": ledger.persistent,
        }

    def _stage_chunks(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        assignment: Optional[ReliabilityAssignment],
        mission_time: Optional[float],
    ) -> Optional[List[Chunk]]:
        if stage.kind != "sweep":
            return [spec.single_chunk_for(stage)]
        raw = stage.payload.get("scenarios")
        if raw is None:
            return None
        scenarios = scenarios_from_spec(raw, assignment=assignment, mission_time=mission_time)
        documents = [scenario_to_dict(s) for s in scenarios]
        return spec.chunks_for(stage, documents)

    # -- sweep stages -----------------------------------------------------------------

    def _run_sweep_stage(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        tree: FaultTree,
        assignment: Optional[ReliabilityAssignment],
        mission_time: Optional[float],
        ledger: CompletionLedger,
        stats: StageStats,
        *,
        live_scenarios: Optional[List[Scenario]] = None,
    ) -> ScenarioReport:
        if live_scenarios is not None:
            scenarios = list(live_scenarios)
        else:
            raw = stage.payload.get("scenarios")
            if raw is None:
                raise CampaignError(
                    f"sweep stage {stage.name!r} needs a 'scenarios' list or family spec"
                )
            scenarios = scenarios_from_spec(
                raw, assignment=assignment, mission_time=mission_time
            )

        # Content addresses need the wire form; scenarios without one (bound
        # maintenance patches injected as live objects) run unledgered.
        documents: Optional[List[Dict[str, Any]]]
        try:
            documents = [scenario_to_dict(scenario) for scenario in scenarios]
        except SerializationError:
            documents = None

        chunk_size = stage.payload.get("chunk_size") or max(1, len(scenarios))
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
            raise CampaignError(
                f"stage {stage.name!r}: chunk_size must be a positive integer, "
                f"got {stage.payload.get('chunk_size')!r}"
            )
        pieces: List[List[Scenario]] = (
            [scenarios[start : start + chunk_size] for start in range(0, len(scenarios), chunk_size)]
            if scenarios
            else [[]]
        )
        if documents is not None:
            chunks = spec.chunks_for(stage, documents)
            if len(chunks) != len(pieces):  # pragma: no cover - defensive
                raise CampaignError(
                    f"stage {stage.name!r}: chunk partitioning diverged "
                    f"({len(chunks)} hashed vs {len(pieces)} live)"
                )
        else:
            chunks = [
                Chunk(stage=stage.name, index=index, hash="", payload={})
                for index in range(len(pieces))
            ]

        stats.chunks_total = len(pieces)
        results: List[Optional[ScenarioReport]] = [None] * len(pieces)
        todo: List[int] = []
        for index, chunk in enumerate(chunks):
            self._check_stop()
            if chunk.hash:
                found, record = ledger.load_chunk(chunk.hash)
                if found:
                    results[index] = record["result"]
                    stats.ledger_hits += 1
                    get_metrics().inc("repro_campaign_chunks_total", result="ledger_hit")
                    self._replay_outcomes(record["result"])
                    continue
            todo.append(index)

        if todo:
            self._execute_sweep_chunks(
                spec, stage, tree, pieces, chunks, todo, results, ledger, stats
            )

        missing = [index for index, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover - defensive
            raise CampaignError(
                f"stage {stage.name!r}: chunk(s) {missing} produced no result"
            )
        merged = merge_scenario_reports([result for result in results if result is not None])
        return merged

    def _sweep_config(self, spec: CampaignSpec) -> Dict[str, Any]:
        return {
            "store_path": self.store_path,
            "analyses": tuple(spec.analyses),
            "backend": spec.backend,
            "incremental": spec.incremental,
            "exact_top_event": spec.exact_top_event,
            "top_k": spec.top_k,
            "samples": spec.samples,
            "seed": spec.seed,
            "cache_max_entries": self.cache_max_entries,
        }

    def _execute_sweep_chunks(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        tree: FaultTree,
        pieces: List[List[Scenario]],
        chunks: List[Chunk],
        todo: List[int],
        results: List[Optional[ScenarioReport]],
        ledger: CompletionLedger,
        stats: StageStats,
    ) -> None:
        config = self._sweep_config(spec)
        remaining = list(todo)
        if spec.workers > 1 and len(remaining) > 1:
            if self.store is not None:
                # Warm the store with the base analysis before fanning out: on
                # a cold store every chunk would otherwise race through the
                # same expensive base computation and N-1 of the results would
                # be discarded by the merge.
                self._warm_base(spec, tree)
            remaining = self._run_chunks_in_processes(
                spec, stage, tree, pieces, chunks, remaining, results, ledger, stats, config
            )
        for index in remaining:
            results[index] = self._run_chunk_with_retries(
                spec,
                stage,
                chunks[index],
                index,
                ledger,
                stats,
                lambda: self._run_chunk_inline(spec, tree, pieces[index]),
            )

    def _warm_base(self, spec: CampaignSpec, tree: FaultTree) -> None:
        SweepExecutor(
            self.session,
            incremental=spec.incremental,
            backend=spec.backend,
            exact_top_event=spec.exact_top_event,
        ).run(
            tree,
            [],
            analyses=spec.analyses,
            top_k=spec.top_k,
            samples=spec.samples,
            seed=spec.seed,
        )

    def _run_chunk_inline(
        self, spec: CampaignSpec, tree: FaultTree, scenarios: List[Scenario]
    ) -> ScenarioReport:
        executor = SweepExecutor(
            self.session,
            incremental=spec.incremental,
            backend=spec.backend,
            exact_top_event=spec.exact_top_event,
        )
        return executor.run(
            tree,
            scenarios,
            analyses=spec.analyses,
            top_k=spec.top_k,
            samples=spec.samples,
            seed=spec.seed,
            stop_check=self._stop_check,
            on_outcome=self._on_outcome,
        )

    def _run_chunk_with_retries(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        chunk: Chunk,
        index: int,
        ledger: CompletionLedger,
        stats: StageStats,
        compute: Callable[[], Any],
    ) -> Any:
        """Run one chunk attempt loop; persist to the ledger on success."""
        attempt = 0
        while True:
            self._check_stop()
            stats.attempts += 1
            try:
                if self._before_chunk is not None:
                    self._before_chunk(stage.name, index, attempt)
                with _trace.span("chunk", stage=stage.name, index=index):
                    result = compute()
            except ReproError as exc:
                if attempt >= spec.max_retries:
                    get_metrics().inc("repro_campaign_chunks_total", result="failed")
                    log_event(
                        "campaigns.runner",
                        "chunk_failed",
                        stage=stage.name,
                        chunk=index,
                        attempts=attempt + 1,
                        error=str(exc),
                    )
                    raise CampaignError(
                        f"stage {stage.name!r} chunk {index} failed after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                get_metrics().inc("repro_campaign_chunk_retries_total")
                log_event(
                    "campaigns.runner",
                    "chunk_retry",
                    stage=stage.name,
                    chunk=index,
                    attempt=attempt + 1,
                    error=str(exc),
                )
                self._sleep(self._backoff_delay(spec, attempt))
                attempt += 1
                continue
            stats.executed += 1
            get_metrics().inc("repro_campaign_chunks_total", result="executed")
            if chunk.hash:
                ledger.store_chunk(
                    stage=stage.name,
                    index=index,
                    chunk_hash=chunk.hash,
                    result=result,
                    attempts=attempt + 1,
                )
            return result

    @staticmethod
    def _backoff_delay(spec: CampaignSpec, attempt: int) -> float:
        return min(spec.retry_base_delay_s * (2 ** attempt), spec.retry_max_delay_s)

    def _run_chunks_in_processes(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        tree: FaultTree,
        pieces: List[List[Scenario]],
        chunks: List[Chunk],
        todo: List[int],
        results: List[Optional[ScenarioReport]],
        ledger: CompletionLedger,
        stats: StageStats,
        config: Dict[str, Any],
    ) -> List[int]:
        """Fan the missing chunks over a spawn process pool.

        Returns the indices that still need the in-process path — everything
        on pool breakage (sandboxes without subprocess support, OOM-killed
        workers), or nothing on success.  The ledger is written as each chunk
        lands, so even a run whose pool later breaks keeps its finished work.
        """
        import multiprocessing

        pending = {index: 0 for index in todo}  # index -> attempts so far
        try:
            # Spawn, not fork: the service calls this from worker threads, and
            # forking a multithreaded process can deadlock a child on a lock
            # some other thread held at fork time.
            with ProcessPoolExecutor(
                max_workers=min(spec.workers, len(todo)),
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                while pending:
                    self._check_stop()
                    futures = {
                        pool.submit(
                            _sweep_chunk_worker, (index, tree, pieces[index], config)
                        ): index
                        for index in pending
                    }
                    failed: Dict[int, str] = {}
                    for future in as_completed(futures):
                        index = futures[future]
                        stats.attempts += 1
                        try:
                            _, report, metrics_snapshot = future.result()
                        except (OSError, BrokenProcessPool):
                            raise
                        except Exception as exc:  # noqa: BLE001 - chunk failures retry
                            log_event(
                                "campaigns.runner",
                                "chunk_attempt_failed",
                                stage=stage.name,
                                chunk=index,
                                attempt=pending[index] + 1,
                                error=str(exc),
                            )
                            failed[index] = str(exc)
                            continue
                        get_metrics().merge_snapshot(metrics_snapshot)
                        get_metrics().inc("repro_campaign_chunks_total", result="executed")
                        results[index] = report
                        self._replay_outcomes(report)
                        stats.executed += 1
                        if chunks[index].hash:
                            ledger.store_chunk(
                                stage=stage.name,
                                index=index,
                                chunk_hash=chunks[index].hash,
                                result=report,
                                attempts=pending[index] + 1,
                            )
                        del pending[index]
                    if failed:
                        exhausted = [
                            index for index in failed if pending[index] >= spec.max_retries
                        ]
                        if exhausted:
                            index = exhausted[0]
                            get_metrics().inc(
                                "repro_campaign_chunks_total", result="failed"
                            )
                            raise CampaignError(
                                f"stage {stage.name!r} chunk {index} failed after "
                                f"{pending[index] + 1} attempt(s): {failed[index]}"
                            )
                        delay = max(
                            self._backoff_delay(spec, pending[index]) for index in failed
                        )
                        for index in failed:
                            pending[index] += 1
                            get_metrics().inc("repro_campaign_chunk_retries_total")
                        self._sleep(delay)
        except (OSError, BrokenProcessPool):
            # Degrade to the in-process path for whatever is left; completed
            # chunks stay completed (and ledgered).
            return sorted(pending)
        return []

    # -- frontier stages --------------------------------------------------------------

    def _run_frontier_stage(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        tree: FaultTree,
        ledger: CompletionLedger,
        stats: StageStats,
    ) -> Dict[str, Any]:
        chunk = spec.single_chunk_for(stage)
        stats.chunks_total = 1
        found, record = ledger.load_chunk(chunk.hash)
        if found:
            stats.ledger_hits += 1
            get_metrics().inc("repro_campaign_chunks_total", result="ledger_hit")
            return record["result"]

        actions = actions_from_spec(stage.payload.get("actions"))
        validate_actions(tree, actions)
        method = stage.payload.get("method", "auto")
        precision = stage.payload.get("precision", 10**6)

        def compute() -> Dict[str, Any]:
            frontier = pareto_frontier(
                tree,
                actions,
                method=method,
                precision=precision,
                cache=self.session.artifacts,
            )
            return frontier.to_dict()

        return self._run_chunk_with_retries(spec, stage, chunk, 0, ledger, stats, compute)

    # -- report stages ----------------------------------------------------------------

    def _run_report_stage(
        self,
        spec: CampaignSpec,
        stage: StageSpec,
        stage_results: Dict[str, Any],
        ledger: CompletionLedger,
        stats: StageStats,
    ) -> Dict[str, Any]:
        chunk = spec.single_chunk_for(stage)
        stats.chunks_total = 1
        found, record = ledger.load_chunk(chunk.hash)
        if found:
            stats.ledger_hits += 1
            get_metrics().inc("repro_campaign_chunks_total", result="ledger_hit")
            return record["result"]
        dependencies = stage.depends_on or tuple(
            done.name for done in spec.stages if done.name != stage.name
        )
        document: Dict[str, Any] = {
            "kind": "campaign_report",
            "campaign": spec.campaign_id(),
            "name": spec.name,
            "stages": {},
        }
        for name in dependencies:
            if name not in stage_results:
                raise CampaignError(
                    f"report stage {stage.name!r}: dependency {name!r} has no result"
                )
            value = stage_results[name]
            if isinstance(value, ScenarioReport):
                document["stages"][name] = {
                    "kind": "sweep",
                    "report": value.to_dict(),
                    "canonical": value.to_canonical_dict(),
                }
            else:
                document["stages"][name] = {"kind": spec.stage(name).kind, "result": value}
        stats.executed += 1
        stats.attempts += 1
        ledger.store_chunk(
            stage=stage.name, index=0, chunk_hash=chunk.hash, result=document, attempts=1
        )
        return document


def run_campaign(
    spec: CampaignSpec,
    *,
    store_path: Optional[str] = None,
    store: Any = None,
    session: Optional[AnalysisSession] = None,
    cache_max_entries: Optional[int] = None,
) -> CampaignOutcome:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(
        store=store,
        store_path=store_path,
        session=session,
        cache_max_entries=cache_max_entries,
    )
    return runner.run(spec)
