"""Declarative campaign specifications: named stages forming a small DAG.

A :class:`CampaignSpec` describes a whole resumable workload over one fault
tree: each :class:`StageSpec` names a unit of the pipeline — a scenario
``sweep``, a Pareto ``frontier`` probe, or a ``report`` merge — and declares
the stages it ``depends_on``.  Stages fan out into **content-addressed
chunks**: a sweep stage's scenario grid is partitioned into contiguous
slices, and every chunk is identified by a SHA-256 hash over everything that
determines its result (tree document, stage configuration, the chunk's
scenario documents and its position).  Chunk hashes are the resume currency:
a :class:`~repro.campaigns.runner.CampaignRunner` consults the completion
ledger under ``(campaign id, chunk hash)`` before computing anything, so a
restarted campaign re-executes exactly the chunks whose results are missing.

Everything here is JSON-first — a spec round-trips losslessly through
:meth:`CampaignSpec.to_dict` / :meth:`CampaignSpec.from_dict` (the campaign
wire format re-exported by :mod:`repro.scenarios.serialization`), and the
campaign id is a content hash of that canonical JSON, so submitting the same
spec twice *is* a resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "Chunk",
    "StageSpec",
    "STAGE_KINDS",
    "sweep_stage",
    "frontier_stage",
    "report_stage",
]

#: Stage kinds the runner understands.
STAGE_KINDS = ("sweep", "frontier", "report")

#: Default scenarios per sweep chunk when the stage does not choose.
DEFAULT_CHUNK_SIZE = 16


class CampaignError(ReproError):
    """Malformed campaign specification (bad DAG, unknown kind, bad payload)."""


def _canonical_json(document: Any) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def content_hash(document: Any) -> str:
    """SHA-256 hex digest of a JSON document's canonical serialisation."""
    return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StageSpec:
    """One named stage of a campaign DAG.

    Parameters
    ----------
    name:
        Unique stage name within the campaign.
    kind:
        ``sweep`` (scenario grid, chunked), ``frontier`` (Pareto probe,
        single chunk) or ``report`` (merge of the dependencies' results,
        single chunk).
    payload:
        Kind-specific JSON configuration: a sweep stage carries a
        ``scenarios`` list/family spec (the wire format of
        :func:`repro.scenarios.serialization.scenarios_from_spec`) plus an
        optional ``chunk_size``; a frontier stage carries ``actions`` and
        optionally ``method``/``precision``; a report stage needs no payload.
    depends_on:
        Names of stages that must complete before this one starts.
    """

    name: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(f"stage name must be a non-empty string, got {self.name!r}")
        if self.kind not in STAGE_KINDS:
            raise CampaignError(
                f"unknown stage kind {self.kind!r}; expected one of {', '.join(STAGE_KINDS)}"
            )
        if not isinstance(self.payload, dict):
            raise CampaignError(
                f"stage {self.name!r}: payload must be a JSON object, got {self.payload!r}"
            )
        object.__setattr__(self, "depends_on", tuple(self.depends_on))

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.payload:
            document["payload"] = self.payload
        if self.depends_on:
            document["depends_on"] = list(self.depends_on)
        return document

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "StageSpec":
        if not isinstance(document, Mapping):
            raise CampaignError(f"stage document must be an object, got {document!r}")
        unknown = set(document) - {"name", "kind", "payload", "depends_on"}
        if unknown:
            raise CampaignError(
                f"stage document has unknown fields: {', '.join(sorted(unknown))}"
            )
        try:
            name = document["name"]
            kind = document["kind"]
        except KeyError as exc:
            raise CampaignError(f"stage document is missing {exc}") from exc
        return StageSpec(
            name=name,
            kind=kind,
            payload=dict(document.get("payload", {})),
            depends_on=tuple(document.get("depends_on", ())),
        )


@dataclass(frozen=True)
class Chunk:
    """One content-addressed unit of stage work.

    ``hash`` identifies the chunk's *result*: it covers the campaign's tree
    and analysis configuration, the stage name and kind, the chunk index and
    the chunk-specific payload slice, so two chunks share a hash exactly when
    recomputing either would reproduce the other's output byte for byte.
    """

    stage: str
    index: int
    hash: str
    #: Kind-specific work description (e.g. the chunk's scenario documents).
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CampaignSpec:
    """A named, resumable pipeline over one fault tree.

    The analysis configuration (``analyses``, ``backend``, ``top_k``, …)
    is campaign-global so every stage — and every chunk — analyses under
    identical settings; this is what makes the merged report of a resumed
    campaign byte-identical to an uninterrupted run.
    """

    name: str
    tree: Dict[str, Any]
    stages: Tuple[StageSpec, ...]
    analyses: Tuple[str, ...] = ("mpmcs", "top_event")
    backend: str = "mocus"
    incremental: bool = True
    exact_top_event: bool = True
    top_k: int = 5
    samples: int = 0
    seed: int = 0
    models: Optional[Dict[str, Any]] = None
    mission_time: Optional[float] = None
    #: Process fan-out for executing ready chunks (0/1 = in-process).
    workers: int = 0
    #: Retry budget per chunk (attempts beyond the first).
    max_retries: int = 2
    #: Base delay of the capped exponential backoff between chunk retries.
    retry_base_delay_s: float = 0.1
    #: Backoff cap.
    retry_max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(f"campaign name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.tree, dict):
            raise CampaignError("campaign spec needs a 'tree' JSON document")
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "analyses", tuple(self.analyses))
        if not self.stages:
            raise CampaignError("campaign spec needs at least one stage")
        if self.max_retries < 0:
            raise CampaignError(f"max_retries must be >= 0, got {self.max_retries}")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate stage names in campaign {self.name!r}")
        known = set(names)
        for stage in self.stages:
            missing = [dep for dep in stage.depends_on if dep not in known]
            if missing:
                raise CampaignError(
                    f"stage {stage.name!r} depends on unknown stage(s) "
                    f"{', '.join(sorted(missing))}"
                )
            if stage.name in stage.depends_on:
                raise CampaignError(f"stage {stage.name!r} depends on itself")
        self.topological_order()  # raises on cycles

    # -- DAG ----------------------------------------------------------------------

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise CampaignError(f"campaign {self.name!r} has no stage {name!r}")

    def topological_order(self) -> List[StageSpec]:
        """Stages in dependency order (declaration order breaks ties).

        Raises :class:`CampaignError` when the dependency graph has a cycle.
        """
        done: Dict[str, bool] = {}
        order: List[StageSpec] = []
        remaining = list(self.stages)
        while remaining:
            progressed = False
            still: List[StageSpec] = []
            for stage in remaining:
                if all(done.get(dep) for dep in stage.depends_on):
                    done[stage.name] = True
                    order.append(stage)
                    progressed = True
                else:
                    still.append(stage)
            if not progressed:
                cycle = ", ".join(sorted(stage.name for stage in still))
                raise CampaignError(
                    f"campaign {self.name!r} has a dependency cycle involving: {cycle}"
                )
            remaining = still
        return order

    # -- identity -----------------------------------------------------------------

    def campaign_id(self) -> str:
        """Content hash of the canonical spec document — the campaign's identity.

        Two textually different but canonically identical specs share an id,
        so resubmitting a spec resumes its campaign instead of redoing it.
        """
        return content_hash(self.to_dict())[:32]

    # -- chunking -----------------------------------------------------------------

    def chunks_for(self, stage: StageSpec, scenario_documents: Sequence[Dict[str, Any]]) -> List[Chunk]:
        """Content-addressed chunks of one sweep stage's scenario grid.

        ``scenario_documents`` is the stage's *expanded* scenario list in
        wire form (family specs are expanded by the runner before chunking so
        the chunk hash covers the concrete scenarios, not the spec sugar).
        Chunks are contiguous, order-preserving slices; outcome concatenation
        in chunk order therefore reproduces the sequential scenario order.
        """
        raw = stage.payload.get("chunk_size", DEFAULT_CHUNK_SIZE)
        if not isinstance(raw, int) or isinstance(raw, bool) or raw < 0:
            raise CampaignError(
                f"stage {stage.name!r}: chunk_size must be a non-negative integer, got {raw!r}"
            )
        chunk_size = raw or max(1, len(scenario_documents))
        base = self._chunk_base(stage)
        chunks: List[Chunk] = []
        documents = list(scenario_documents)
        if not documents:
            slices: List[List[Dict[str, Any]]] = [[]]
        else:
            slices = [
                documents[start : start + chunk_size]
                for start in range(0, len(documents), chunk_size)
            ]
        for index, piece in enumerate(slices):
            digest = content_hash({**base, "index": index, "scenarios": piece})
            chunks.append(
                Chunk(stage=stage.name, index=index, hash=digest, payload={"scenarios": piece})
            )
        return chunks

    def single_chunk_for(self, stage: StageSpec) -> Chunk:
        """The one chunk of a non-fanning stage (frontier, report)."""
        digest = content_hash({**self._chunk_base(stage), "index": 0, "payload": stage.payload})
        return Chunk(stage=stage.name, index=0, hash=digest, payload=dict(stage.payload))

    def _chunk_base(self, stage: StageSpec) -> Dict[str, Any]:
        """Everything every chunk hash of ``stage`` must cover besides its slice."""
        return {
            "tree": self.tree,
            "models": self.models,
            "mission_time": self.mission_time,
            "analyses": list(self.analyses),
            "backend": self.backend,
            "incremental": self.incremental,
            "exact_top_event": self.exact_top_event,
            "top_k": self.top_k,
            "samples": self.samples,
            "seed": self.seed,
            "stage": stage.name,
            "kind": stage.kind,
        }

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON document (the campaign wire format)."""
        document: Dict[str, Any] = {
            "name": self.name,
            "tree": self.tree,
            "stages": [stage.to_dict() for stage in self.stages],
            "analyses": list(self.analyses),
            "backend": self.backend,
            "incremental": self.incremental,
            "exact_top_event": self.exact_top_event,
            "top_k": self.top_k,
            "samples": self.samples,
            "seed": self.seed,
            "workers": self.workers,
            "max_retries": self.max_retries,
            "retry_base_delay_s": self.retry_base_delay_s,
            "retry_max_delay_s": self.retry_max_delay_s,
        }
        if self.models is not None:
            document["models"] = self.models
        if self.mission_time is not None:
            document["mission_time"] = self.mission_time
        return document

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "CampaignSpec":
        """Reconstruct a spec from its wire document (inverse of :meth:`to_dict`)."""
        if not isinstance(document, Mapping):
            raise CampaignError(f"campaign document must be an object, got {document!r}")
        known = {
            "name", "tree", "stages", "analyses", "backend", "incremental",
            "exact_top_event", "top_k", "samples", "seed", "workers",
            "max_retries", "retry_base_delay_s", "retry_max_delay_s",
            "models", "mission_time",
        }
        unknown = set(document) - known
        if unknown:
            raise CampaignError(
                f"campaign document has unknown fields: {', '.join(sorted(unknown))}"
            )
        try:
            name = document["name"]
            tree = document["tree"]
            stages = document["stages"]
        except KeyError as exc:
            raise CampaignError(f"campaign document is missing {exc}") from exc
        if not isinstance(stages, Sequence) or isinstance(stages, (str, bytes)):
            raise CampaignError("campaign 'stages' must be a list of stage documents")
        try:
            return CampaignSpec(
                name=name,
                tree=tree,
                stages=tuple(StageSpec.from_dict(stage) for stage in stages),
                analyses=tuple(document.get("analyses", ("mpmcs", "top_event"))),
                backend=document.get("backend", "mocus"),
                incremental=bool(document.get("incremental", True)),
                exact_top_event=bool(document.get("exact_top_event", True)),
                top_k=int(document.get("top_k", 5)),
                samples=int(document.get("samples", 0)),
                seed=int(document.get("seed", 0)),
                workers=int(document.get("workers", 0)),
                max_retries=int(document.get("max_retries", 2)),
                retry_base_delay_s=float(document.get("retry_base_delay_s", 0.1)),
                retry_max_delay_s=float(document.get("retry_max_delay_s", 5.0)),
                models=document.get("models"),
                mission_time=document.get("mission_time"),
            )
        except CampaignError:
            raise
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"malformed campaign document: {exc}") from exc


# -- convenience constructors ------------------------------------------------------


def sweep_stage(
    name: str,
    scenarios: "Sequence[Dict[str, Any]] | Dict[str, Any]",
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    depends_on: Sequence[str] = (),
) -> StageSpec:
    """A scenario-sweep stage over an explicit list or a family spec."""
    return StageSpec(
        name=name,
        kind="sweep",
        payload={"scenarios": scenarios, "chunk_size": chunk_size},
        depends_on=tuple(depends_on),
    )


def frontier_stage(
    name: str,
    actions: Sequence[Dict[str, Any]],
    *,
    method: str = "auto",
    precision: int = 10**6,
    depends_on: Sequence[str] = (),
) -> StageSpec:
    """A Pareto-frontier mitigation-planning stage."""
    return StageSpec(
        name=name,
        kind="frontier",
        payload={"actions": list(actions), "method": method, "precision": precision},
        depends_on=tuple(depends_on),
    )


def report_stage(name: str, *, depends_on: Sequence[str]) -> StageSpec:
    """A merge stage combining the results of its dependencies."""
    return StageSpec(name=name, kind="report", depends_on=tuple(depends_on))
