"""The persistent per-chunk completion ledger of a campaign.

Ledger entries ride the existing :class:`~repro.service.store.DiskArtifactStore`
machinery — the same atomic-rename, versioned, SHA-256-checksummed entry
format every other artifact kind uses — under the dedicated
:data:`~repro.api.cache.ARTIFACT_CAMPAIGN_LEDGER` kind.  Two record shapes
live there:

* **chunk records**, keyed by ``sha256(campaign_id ':' chunk_hash)``: the
  chunk's full result plus attempt metadata.  Written once, after the chunk
  completed; a crash between chunks loses at most the in-flight chunk.
* **state records**, keyed by ``sha256(campaign_id ':state')``: the campaign
  spec document plus its lifecycle status (``running``/``done``/``failed``)
  and, once finished, the final merged result.  This is what lets a fresh
  process resume a campaign from nothing but its id.

A ledger constructed without a store degrades to an in-process dict — the
campaign still runs (and retries), it just cannot survive the process.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.api.cache import ARTIFACT_CAMPAIGN_LEDGER

__all__ = ["CompletionLedger", "campaign_state", "chunk_record_key", "state_record_key"]


def chunk_record_key(campaign_id: str, chunk_hash: str) -> str:
    """Store key of one chunk's completion record."""
    return hashlib.sha256(f"{campaign_id}:{chunk_hash}".encode("utf-8")).hexdigest()


def state_record_key(campaign_id: str) -> str:
    """Store key of a campaign's state record."""
    return hashlib.sha256(f"{campaign_id}:state".encode("utf-8")).hexdigest()


def campaign_state(store: Any, campaign_id: str) -> Optional[Dict[str, Any]]:
    """Load a campaign's state record from a store, or ``None``."""
    if store is None:
        return None
    found, value = store.load(state_record_key(campaign_id), ARTIFACT_CAMPAIGN_LEDGER)
    return value if found and isinstance(value, dict) else None


class CompletionLedger:
    """Per-campaign view over the ledger records of one artifact store.

    The ledger counts its own traffic — ``hits`` (chunks served from the
    ledger instead of recomputed) and ``writes`` — which is how the
    crash-resume tests assert *zero recomputation* of completed chunks.
    """

    def __init__(self, store: Any, campaign_id: str) -> None:
        self.store = store
        self.campaign_id = campaign_id
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def persistent(self) -> bool:
        return self.store is not None

    # -- chunk records ----------------------------------------------------------------

    def load_chunk(self, chunk_hash: str) -> Tuple[bool, Optional[Dict[str, Any]]]:
        """``(found, record)`` for one chunk's completion record."""
        key = chunk_record_key(self.campaign_id, chunk_hash)
        if self.store is None:
            record = self._memory.get(key)
            found = record is not None
        else:
            found, record = self.store.load(key, ARTIFACT_CAMPAIGN_LEDGER)
        if found and isinstance(record, dict) and record.get("chunk") == chunk_hash:
            self.hits += 1
            return True, record
        self.misses += 1
        return False, None

    def store_chunk(
        self,
        *,
        stage: str,
        index: int,
        chunk_hash: str,
        result: Any,
        attempts: int,
    ) -> Dict[str, Any]:
        """Persist one completed chunk's record (atomic via the store)."""
        record = {
            "campaign": self.campaign_id,
            "stage": stage,
            "index": index,
            "chunk": chunk_hash,
            "result": result,
            "attempts": attempts,
            "completed_at": time.time(),
        }
        key = chunk_record_key(self.campaign_id, chunk_hash)
        if self.store is None:
            self._memory[key] = record
        else:
            self.store.store(key, ARTIFACT_CAMPAIGN_LEDGER, record)
        self.writes += 1
        return record

    def completed_chunks(self, chunk_hashes: List[str]) -> Dict[str, Dict[str, Any]]:
        """Probe the ledger for every hash; returns the found records by hash.

        Unlike :meth:`load_chunk` this does not touch the hit/miss counters —
        it is the *status* path (``GET /campaigns/<id>``), not the execution
        path, and status polling must not masquerade as resume reuse.
        """
        found: Dict[str, Dict[str, Any]] = {}
        for chunk_hash in chunk_hashes:
            key = chunk_record_key(self.campaign_id, chunk_hash)
            if self.store is None:
                record = self._memory.get(key)
                ok = record is not None
            else:
                ok, record = self.store.load(key, ARTIFACT_CAMPAIGN_LEDGER)
            if ok and isinstance(record, dict) and record.get("chunk") == chunk_hash:
                found[chunk_hash] = record
        return found

    # -- state record -----------------------------------------------------------------

    def load_state(self) -> Optional[Dict[str, Any]]:
        if self.store is None:
            return self._memory.get(state_record_key(self.campaign_id))
        return campaign_state(self.store, self.campaign_id)

    def store_state(
        self,
        *,
        status: str,
        spec_document: Dict[str, Any],
        name: str,
        error: Optional[str] = None,
        stages: Optional[Dict[str, Any]] = None,
        result: Any = None,
    ) -> Dict[str, Any]:
        record = {
            "campaign": self.campaign_id,
            "name": name,
            "status": status,
            "spec": spec_document,
            "error": error,
            "stages": stages or {},
            "result": result,
            "updated_at": time.time(),
        }
        key = state_record_key(self.campaign_id)
        if self.store is None:
            self._memory[key] = record
        else:
            self.store.store(key, ARTIFACT_CAMPAIGN_LEDGER, record)
        return record

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}
