"""Structured JSON-lines event logging.

Every event is one JSON object per line::

    {"ts": 1723112345.123, "module": "service.store", "event": "corrupt_entry_dropped",
     "span": "s17", "path": "...", "kind": "cnf-encoding"}

The logger is process-wide and defaults to the shared no-op
:class:`NullLogger`, so instrumented call sites (``log_event(...)``) cost a
single no-op method call unless logging was enabled -- e.g. via the
``--log-json PATH`` flag on ``repro serve`` and campaign runs.
:class:`MemoryLogger` collects events in a list for tests and demos.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from .trace import current_tracer

__all__ = [
    "JsonLinesLogger",
    "MemoryLogger",
    "NullLogger",
    "get_logger",
    "log_event",
    "set_logger",
]


def _build_event(module: str, event: str, attrs: Dict[str, Any]) -> Dict[str, Any]:
    record: Dict[str, Any] = {"ts": time.time(), "module": module, "event": event}
    tracer = current_tracer()
    if tracer.is_recording:
        span = tracer.current
        if span.is_recording:
            record["span"] = span.span_id
    record.update(attrs)
    return record


class JsonLinesLogger:
    """Append JSON-lines events to a file path or an open text stream."""

    def __init__(self, target: Any):
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._stream = target
            self._owns_stream = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owns_stream = True

    @property
    def is_recording(self) -> bool:
        return True

    def log(self, module: str, event: str, **attrs: Any) -> None:
        record = _build_event(module, event, attrs)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


class MemoryLogger:
    """Collects event dicts in memory; for tests and interactive inspection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[Dict[str, Any]] = []

    @property
    def is_recording(self) -> bool:
        return True

    def log(self, module: str, event: str, **attrs: Any) -> None:
        record = _build_event(module, event, attrs)
        with self._lock:
            self.events.append(record)

    def matching(self, event: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [record for record in self.events if record["event"] == event]

    def close(self) -> None:
        pass


class NullLogger:
    """Shared do-nothing logger: the zero-cost default."""

    __slots__ = ()

    @property
    def is_recording(self) -> bool:
        return False

    def log(self, module: str, event: str, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_LOGGER = NullLogger()

_LOGGER = NULL_LOGGER


def get_logger():
    """Return the process-wide structured logger (no-op by default)."""

    return _LOGGER


def set_logger(logger) -> Any:
    """Install ``logger`` process-wide; returns the previous logger."""

    global _LOGGER
    previous = _LOGGER
    _LOGGER = logger if logger is not None else NULL_LOGGER
    return previous


def log_event(module: str, event: str, **attrs: Any) -> None:
    """Emit one structured event through the process-wide logger."""

    _LOGGER.log(module, event, **attrs)
