"""Process-wide metrics registry with Prometheus text exposition.

Counters, gauges, and fixed-bucket histograms, keyed by metric name plus a
sorted label tuple.  A single lock guards all mutation, so the registry is
safe to share across the worker-pool threads and the HTTP front end.

Two registries exist in practice:

* the shared no-op :class:`NullMetricsRegistry` -- the library default, so
  plain-library users pay nothing;
* a real :class:`MetricsRegistry` installed by the service layer (and by
  campaign chunk workers in child processes), exposed via ``GET /metrics``.

Cross-process aggregation goes through :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.merge_snapshot`: a spawn-child runs its chunk against
a fresh registry, ships the snapshot back with the chunk result, and the
parent folds counters and histogram buckets into its own registry.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "enable_metrics",
    "get_metrics",
    "scoped_metrics",
    "set_metrics",
]

#: Default latency buckets (seconds): sub-millisecond through one minute.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    15.0,
    60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Histogram:
    __slots__ = ("buckets", "bucket_counts", "count", "total")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with label support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[_LabelKey, _Histogram]] = {}

    @property
    def is_recording(self) -> bool:
        return True

    # -- instruments -------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = _Histogram(buckets)
            histogram.observe(value)

    # -- reads -------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Total for one series, or the sum over all series of ``name``."""

        with self._lock:
            series = self._counters.get(name, {})
            if labels:
                return series.get(_label_key(labels), 0)
            return sum(series.values())

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name, {}).get(_label_key(labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        with self._lock:
            series = self._histograms.get(name, {})
            if labels:
                histogram = series.get(_label_key(labels))
                return histogram.count if histogram else 0
            return sum(h.count for h in series.values())

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form, picklable across process boundaries."""

        with self._lock:
            return {
                "counters": {
                    name: {key: value for key, value in series.items()}
                    for name, series in self._counters.items()
                },
                "gauges": {
                    name: {key: value for key, value in series.items()}
                    for name, series in self._gauges.items()
                },
                "histograms": {
                    name: {key: histogram.to_dict() for key, histogram in series.items()}
                    for name, series in self._histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a child-process snapshot into this registry.

        Counters and histograms sum; gauges keep the parent's value (a child
        gauge describes the child's transient state, not the fleet's).
        """

        if not snapshot:
            return
        with self._lock:
            for name, series in snapshot.get("counters", {}).items():
                target = self._counters.setdefault(name, {})
                for key, value in series.items():
                    key = tuple(tuple(pair) for pair in key)
                    target[key] = target.get(key, 0) + value
            dropped: List[Tuple[str, Any]] = []
            for name, series in snapshot.get("histograms", {}).items():
                target_series = self._histograms.setdefault(name, {})
                for key, payload in series.items():
                    key = tuple(tuple(pair) for pair in key)
                    buckets = tuple(payload["buckets"])
                    histogram = target_series.get(key)
                    if histogram is None:
                        histogram = target_series[key] = _Histogram(buckets)
                    if histogram.buckets != buckets:
                        # Merging only count/total would silently corrupt the
                        # series (quantile estimates would disagree with the
                        # count); drop the whole incoming series and account
                        # for it instead.
                        dropped.append((name, key))
                        counter = self._counters.setdefault(
                            "metrics_merge_dropped_total", {}
                        )
                        drop_key = _label_key({"metric": name})
                        counter[drop_key] = counter.get(drop_key, 0) + 1
                        continue
                    for index, count in enumerate(payload["bucket_counts"]):
                        histogram.bucket_counts[index] += count
                    histogram.count += payload["count"]
                    histogram.total += payload["total"]
        # Imported lazily: the log module is a sibling, and keeping the
        # registry import-light lets it be the first observability import.
        from repro.observability.log import log_event

        for name, key in dropped:
            # Outside the lock: the event log sink is arbitrary user code.
            log_event(
                "observability.metrics",
                "histogram_series_dropped",
                name=name,
                labels=dict(key),
                reason="bucket bounds mismatch",
            )

    # -- exposition --------------------------------------------------------
    def render_prometheus(self) -> str:
        """Render the registry in the Prometheus text exposition format."""

        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                lines.append(f"# TYPE {name} counter")
                for key in sorted(self._counters[name]):
                    value = self._counters[name][key]
                    lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
            for name in sorted(self._gauges):
                lines.append(f"# TYPE {name} gauge")
                for key in sorted(self._gauges[name]):
                    value = self._gauges[name][key]
                    lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
            for name in sorted(self._histograms):
                lines.append(f"# TYPE {name} histogram")
                for key in sorted(self._histograms[name]):
                    histogram = self._histograms[name][key]
                    cumulative = 0
                    for bound, bucket_count in zip(histogram.buckets, histogram.bucket_counts):
                        cumulative = bucket_count
                        lines.append(
                            f"{name}_bucket{_format_labels(key, (('le', _format_value(float(bound))),))}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_format_labels(key, (('le', '+Inf'),))} {histogram.count}"
                    )
                    lines.append(f"{name}_sum{_format_labels(key)} {_format_value(histogram.total)}")
                    lines.append(f"{name}_count{_format_labels(key)} {histogram.count}")
        return "\n".join(lines) + "\n"


class NullMetricsRegistry:
    """Shared do-nothing registry: the zero-cost library default."""

    __slots__ = ()

    @property
    def is_recording(self) -> bool:
        return False

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, buckets: Any = None, **labels: Any) -> None:
        pass

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0

    def gauge_value(self, name: str, **labels: Any) -> None:
        return None

    def histogram_count(self, name: str, **labels: Any) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""


NULL_METRICS = NullMetricsRegistry()

# Module-level (not contextvar) on purpose: metrics are process-wide, shared
# across worker threads, unlike the per-job tracer.
_REGISTRY = NULL_METRICS


def get_metrics():
    """Return the process-wide registry (no-op unless enabled)."""

    return _REGISTRY


def set_metrics(registry) -> Any:
    """Install ``registry`` process-wide; returns the previous registry."""

    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Ensure a real registry is installed; idempotent.  Returns it."""

    global _REGISTRY
    if not _REGISTRY.is_recording:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


class scoped_metrics:
    """Install a fresh registry for a ``with`` block, restoring the previous.

    Used by campaign chunk workers: even when the process pool reuses a child
    for several chunks, each chunk snapshots only its own activity, so the
    parent-side merge never double counts.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._previous = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        set_metrics(self._previous)
        return False
