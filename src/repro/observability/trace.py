"""Lightweight nested tracing with ambient (contextvar) propagation.

The tracer is deliberately tiny: a :class:`Span` records a name, attributes,
a monotonic duration, free-form counters, a status (``ok``/``error`` with the
exception type), and child spans.  A :class:`Tracer` maintains the current
span stack and is installed as the *ambient* tracer through a
:data:`contextvars.ContextVar`, so instrumented layers (session, cache,
store, solver) never need a tracer argument -- they call :func:`span` and
either record into the enclosing job/campaign span or hit the shared no-op
tracer at near-zero cost.

Spans serialize to plain dicts (:meth:`Span.to_dict`) that round-trip through
:meth:`Span.from_dict`, mirroring the ``AnalysisReport`` wire-format
discipline.  Span ids are deterministic per tracer (``s1``, ``s2``, ... in
creation order) so traces are reproducible and diffable.
"""

from __future__ import annotations

import contextvars
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "format_span_tree",
    "profile_view",
    "span",
    "use_tracer",
]

_NUMERIC = (int, float)


class Span:
    """One node in a trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "attrs",
        "counters",
        "children",
        "status",
        "error_type",
        "duration_s",
        "_start",
    )

    def __init__(self, name: str, span_id: str, attrs: Dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.status = "ok"
        self.error_type: Optional[str] = None
        self.duration_s = 0.0
        self._start = 0.0

    # -- recording ---------------------------------------------------------
    @property
    def is_recording(self) -> bool:
        return True

    def add(self, counter: str, amount: float = 1) -> None:
        """Increment a free-form counter on this span."""

        self.counters[counter] = self.counters.get(counter, 0) + amount

    def merge_counters(self, values: Dict[str, Any]) -> None:
        """Fold the numeric entries of ``values`` into this span's counters."""

        for key, value in values.items():
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                self.add(key, value)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "status": self.status,
            "duration_s": self.duration_s,
        }
        if self.error_type is not None:
            document["error_type"] = self.error_type
        if self.attrs:
            document["attrs"] = dict(self.attrs)
        if self.counters:
            document["counters"] = dict(self.counters)
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    @staticmethod
    def from_dict(document: Dict[str, Any]) -> "Span":
        span = Span(document["name"], document["span_id"], dict(document.get("attrs", {})))
        span.status = document.get("status", "ok")
        span.error_type = document.get("error_type")
        span.duration_s = document.get("duration_s", 0.0)
        span.counters = dict(document.get("counters", {}))
        span.children = [Span.from_dict(child) for child in document.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, children={len(self.children)})"


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    @property
    def is_recording(self) -> bool:
        return False

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def merge_counters(self, values: Dict[str, Any]) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def to_dict(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable, allocation-free context manager yielding :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span._start = time.monotonic()
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        span.duration_s = time.monotonic() - span._start
        if exc_type is not None:
            span.status = "error"
            span.error_type = exc_type.__name__
        self._tracer._pop(span)
        return False


class Tracer:
    """Records a tree of spans for one logical unit of work (job, campaign).

    A tracer is single-threaded by design: each worker installs its own via
    :func:`use_tracer`, and :data:`contextvars` keeps other threads on the
    shared no-op tracer.  ``max_spans`` bounds trace size for huge sweeps;
    spans beyond the cap are dropped (and counted) rather than recorded.
    """

    def __init__(self, max_spans: int = 10_000):
        self.roots: List[Span] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._stack: List[Span] = []
        self._recorded = 0

    # -- span lifecycle ----------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a child span of the current span (or a new root)."""

        if self._recorded >= self.max_spans:
            self.dropped_spans += 1
            return _NULL_SPAN_CONTEXT
        self._recorded += 1
        span = Span(name, f"s{self._recorded}", attrs)
        return _SpanContext(self, span)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- accessors ---------------------------------------------------------
    @property
    def is_recording(self) -> bool:
        return True

    @property
    def current(self):
        return self._stack[-1] if self._stack else NULL_SPAN

    def add(self, counter: str, amount: float = 1) -> None:
        """Increment a counter on the current span, if any."""

        if self._stack:
            self._stack[-1].add(counter, amount)

    def to_dict(self) -> Optional[Dict[str, Any]]:
        """Serialize the (single-root) trace; ``None`` when nothing recorded."""

        if not self.roots:
            return None
        if len(self.roots) == 1:
            return self.roots[0].to_dict()
        synthetic = Span("trace", "s0", {})
        synthetic.children = self.roots
        return synthetic.to_dict()


class _NullTracer:
    """Default ambient tracer: every operation is a no-op."""

    __slots__ = ()

    @property
    def is_recording(self) -> bool:
        return False

    @property
    def current(self) -> _NullSpan:
        return NULL_SPAN

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def to_dict(self) -> None:
        return None


NULL_TRACER = _NullTracer()

_CURRENT_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def current_tracer():
    """Return the ambient tracer (the shared no-op tracer by default)."""

    return _CURRENT_TRACER.get()


class _TracerScope:
    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Tracer:
        self._token = _CURRENT_TRACER.set(self._tracer)
        return self._tracer

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._token is not None:
            _CURRENT_TRACER.reset(self._token)
        return False


def use_tracer(tracer: Tracer) -> _TracerScope:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""

    return _TracerScope(tracer)


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer (no-op when tracing is disabled)."""

    return _CURRENT_TRACER.get().span(name, **attrs)


def add_counter(counter: str, amount: float = 1) -> None:
    """Increment a counter on the ambient tracer's current span."""

    _CURRENT_TRACER.get().add(counter, amount)


def profile_view(trace: Optional[Dict[str, Any]]) -> Dict[str, float]:
    """Project a serialized span tree back onto the ``profile`` wire format.

    ``AnalysisSession`` folds every numeric ``report.profile`` entry into the
    counters of its ``analyze`` span, so the report profile is recoverable
    from the trace alone: this helper returns the counters of the outermost
    ``analyze`` span (summed over all of them for multi-analysis traces).
    """

    totals: Dict[str, float] = {}
    if not trace:
        return totals

    def _visit(node: Dict[str, Any], inside_analyze: bool) -> None:
        is_analyze = node.get("name") == "analyze"
        if is_analyze and not inside_analyze:
            for key, value in node.get("counters", {}).items():
                totals[key] = totals.get(key, 0) + value
        for child in node.get("children", []):
            _visit(child, inside_analyze or is_analyze)

    _visit(trace, False)
    return totals


def _iter_tree(node: Dict[str, Any], depth: int) -> Iterator[Tuple[int, Dict[str, Any]]]:
    yield depth, node
    for child in node.get("children", []):
        yield from _iter_tree(child, depth + 1)


def format_span_tree(trace: Optional[Dict[str, Any]]) -> str:
    """Render a serialized span tree as an indented, human-readable outline."""

    if not trace:
        return "(no trace recorded)"
    lines = []
    for depth, node in _iter_tree(trace, 0):
        status = "" if node.get("status") == "ok" else f" [{node.get('status')}:{node.get('error_type')}]"
        counters = node.get("counters", {})
        extras = ""
        if counters:
            shown = ", ".join(f"{k}={counters[k]:g}" for k in sorted(counters)[:6])
            extras = f"  ({shown})"
        lines.append(
            f"{'  ' * depth}{node['name']}{status}  {node.get('duration_s', 0.0) * 1e3:.2f} ms{extras}"
        )
    return "\n".join(lines)
