"""Observability layer: tracing, metrics, and structured logging.

Three independent, stdlib-only facilities share one design rule: the
*ambient* instance is a shared no-op by default, so instrumentation threaded
through the session, cache, store, solver, and campaign layers costs almost
nothing until a caller opts in.

* :mod:`repro.observability.trace` -- nested spans with monotonic timings,
  propagated through :mod:`contextvars`; a job's span tree is served at
  ``GET /jobs/<id>/trace``.
* :mod:`repro.observability.metrics` -- a process-wide registry of counters,
  gauges, and fixed-bucket histograms; rendered in the Prometheus text format
  at ``GET /metrics`` and by ``repro metrics``.
* :mod:`repro.observability.log` -- JSON-lines structured events, enabled by
  ``--log-json PATH`` on ``repro serve`` and campaign runs.

Quickstart::

    from repro import observability as obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        report = session.analyze(tree)           # spans recorded implicitly
    print(obs.format_span_tree(tracer.to_dict()))

    registry = obs.enable_metrics()              # process-wide, idempotent
    ...
    print(registry.render_prometheus())
"""

from .log import (
    JsonLinesLogger,
    MemoryLogger,
    NullLogger,
    get_logger,
    log_event,
    set_logger,
)
from .metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    scoped_metrics,
    set_metrics,
)
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    add_counter,
    current_tracer,
    format_span_tree,
    profile_view,
    span,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonLinesLogger",
    "MemoryLogger",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullLogger",
    "NullMetricsRegistry",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "enable_metrics",
    "format_span_tree",
    "get_logger",
    "get_metrics",
    "log_event",
    "profile_view",
    "scoped_metrics",
    "set_logger",
    "set_metrics",
    "span",
    "use_tracer",
]
