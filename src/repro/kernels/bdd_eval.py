"""Batch BDD probability evaluation kernels (one per dispatch tier).

Input contract (shared by every tier): a :class:`repro.bdd.probability.FlatBDD`
node-array form and a sequence of per-scenario probability rows, each row
listing the probability of ``flat.events[j]`` at column ``j``.  Output: one
``P(top)`` float per scenario.

Every tier performs the same per-node recurrence in the same children-first
order::

    P(node) = p * P(high) + (1 - p) * P(low)

with the identical IEEE-754 operation sequence (multiply, subtract-from-one,
multiply, add), so the three tiers return bit-for-bit equal doubles.  The
``python`` tier is the reference oracle; the ``numpy`` tier flips the loop
structure — one vectorised pass *across all scenarios* per node — which is
where the batch speedup comes from on wide scenario grids.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.numerics import require_numpy

__all__ = [
    "eval_bdd_batch_array",
    "eval_bdd_batch_numpy",
    "eval_bdd_batch_python",
]


def eval_bdd_batch_python(flat, rows: Sequence[Sequence[float]]) -> List[float]:
    """Reference tier: plain-list forward pass, one scenario at a time."""
    var_index, low, high, root = flat.var_index, flat.low, flat.high, flat.root
    out: List[float] = []
    for row in rows:
        values = [0.0, 1.0]
        append = values.append
        for index, lo, hi in zip(var_index, low, high):
            p = row[index]
            append(p * values[hi] + (1.0 - p) * values[lo])
        out.append(values[root])
    return out


def eval_bdd_batch_array(flat, rows: Sequence[Sequence[float]]) -> List[float]:
    """Stdlib tier: value buffer and node quadruples preallocated once.

    The node walk ``(position, event-column, low, high)`` is materialised as
    one tuple list up front and the value buffer is reused across scenarios
    (children-first ordering guarantees every read position was written
    earlier in the same scenario), so the per-scenario cost is the bare
    recurrence — measurably faster than the reference tier on wide batches.
    """
    root = flat.root
    walk = list(zip(range(2, flat.num_nodes), flat.var_index, flat.low, flat.high))
    values = [0.0] * flat.num_nodes
    values[1] = 1.0
    out: List[float] = []
    append = out.append
    for row in rows:
        for position, index, lo, hi in walk:
            p = row[index]
            values[position] = p * values[hi] + (1.0 - p) * values[lo]
        append(values[root])
    return out


def eval_bdd_batch_numpy(flat, rows: Sequence[Sequence[float]]) -> List[float]:
    """numpy tier: per node, one vectorised step across the whole scenario grid."""
    np = require_numpy("the numpy kernel tier")
    num_rows = len(rows)
    if num_rows == 0:
        return []
    if not len(flat.var_index):
        return [1.0 if flat.root == 1 else 0.0] * num_rows
    # Event-major layout: ``grid[j]`` is the contiguous probability vector of
    # event ``j`` across all scenarios, and ``complement`` precomputes the
    # elementwise ``1.0 - p`` once (the identical IEEE-754 subtraction the
    # scalar walk performs per node, hoisted out of the node loop).
    grid = np.ascontiguousarray(np.asarray(rows, dtype=np.float64).T)
    complement = 1.0 - grid
    values = np.empty((flat.num_nodes, num_rows), dtype=np.float64)
    values[0] = 0.0
    values[1] = 1.0
    scratch = np.empty(num_rows, dtype=np.float64)
    multiply, add = np.multiply, np.add
    position = 2
    for index, lo, hi in zip(flat.var_index, flat.low, flat.high):
        # p * P(high) + (1 - p) * P(low), in the scalar operand order, with
        # preallocated output buffers so the loop never allocates.
        target = values[position]
        multiply(grid[index], values[hi], out=target)
        multiply(complement[index], values[lo], out=scratch)
        add(target, scratch, out=target)
        position += 1
    return values[flat.root].tolist()
