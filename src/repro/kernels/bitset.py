"""Bitset and buffer kernels for the SAT/MaxSAT solver layer.

Unlike the floating-point tiers in :mod:`repro.kernels.bdd_eval`, these
kernels are tier-independent: Python's arbitrary-precision integers *are* the
fast packed-bitset implementation (one machine-word ``AND``/``OR`` per 64
cores), and the stdlib :mod:`array` module provides the contiguous signed
byte buffer the CDCL solver assigns through.  They live here so every solver
hot loop draws its data layout from one place, with a deliberately naive
set-based reference (:func:`set_based_hitting_set`) kept as the oracle the
property tests compare the packed search against.

Contents:

* :class:`CoverageIndex` — packed-int coverage masks over a family of sets
  (the hitting-set search's ``unhit_mask`` machinery, extracted from
  :mod:`repro.maxsat.hitting_set`).
* :func:`set_based_hitting_set` — reference minimum-cost hitting set using
  plain sets of core indices; exponential bookkeeping, test-only.
* :func:`make_assign_buffer` — the CDCL assignment buffer (contiguous signed
  bytes instead of a list of ints).
* :func:`popcount` — portable bit population count.
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "CoverageIndex",
    "make_assign_buffer",
    "popcount",
    "set_based_hitting_set",
]


def popcount(mask: int) -> int:
    """Number of set bits in ``mask`` (non-negative)."""
    return bin(mask).count("1")


def make_assign_buffer(initial: Sequence[int] = (0,)) -> MutableSequence[int]:
    """Contiguous signed-byte buffer for CDCL variable assignments.

    Values are the solver's ternary encoding (``0`` unassigned, ``1`` true,
    ``-1`` false); slot 0 is unused, matching 1-based variable indexing.
    Supports ``append`` for :meth:`CDCLSolver.new_var` growth.
    """
    return array("b", initial)


class CoverageIndex:
    """Packed-int coverage masks for a family of sets ("cores").

    Bit ``i`` of every mask refers to core ``i`` (in input order).  An
    element's *coverage* is the mask of cores containing it, so testing
    whether a partial choice still misses a core is one integer ``AND`` and
    extending a branch is ``unhit & ~coverage[element]`` — two integer ops
    instead of a scan over the core list, regardless of how many cores there
    are.
    """

    __slots__ = ("cores", "coverage", "all_mask")

    def __init__(self, cores: Sequence[FrozenSet[Hashable]]) -> None:
        self.cores: Tuple[FrozenSet[Hashable], ...] = tuple(cores)
        coverage: Dict[Hashable, int] = {}
        for index, core in enumerate(self.cores):
            bit = 1 << index
            for element in core:
                coverage[element] = coverage.get(element, 0) | bit
        self.coverage = coverage
        #: Mask with one bit per core: the "every core unhit" start state.
        self.all_mask = (1 << len(self.cores)) - 1

    def __len__(self) -> int:
        return len(self.cores)

    def mask_of(self, elements: Iterable[Hashable]) -> int:
        """Mask of all cores hit by ``elements`` (unknown elements hit none)."""
        coverage = self.coverage
        mask = 0
        for element in elements:
            mask |= coverage.get(element, 0)
        return mask

    def covers_all(self, elements: Iterable[Hashable]) -> bool:
        """True when ``elements`` hit every core."""
        return self.mask_of(elements) == self.all_mask

    def greedy_cover(
        self, weights: Dict[Hashable, int]
    ) -> Tuple[Set[Hashable], int]:
        """Greedy hitting set: repeatedly take the element hitting the most
        still-unhit cores, ties broken by lower weight (then first-seen
        order).  Returns ``(chosen set, total cost)`` — a feasible upper
        bound for the exact search.
        """
        chosen: Set[Hashable] = set()
        unhit = list(self.cores)
        while unhit:
            counts: Dict[Hashable, int] = {}
            for core in unhit:
                for element in core:
                    counts[element] = counts.get(element, 0) + 1
            element = max(counts, key=lambda lit: (counts[lit], -weights.get(lit, 0)))
            chosen.add(element)
            unhit = [core for core in unhit if element not in core]
        return chosen, sum(weights.get(lit, 0) for lit in chosen)


def set_based_hitting_set(
    cores: Sequence[FrozenSet[Hashable]],
    weights: Dict[Hashable, int],
) -> Tuple[Set[Hashable], int]:
    """Reference minimum-cost hitting set using plain set bookkeeping.

    Branch-and-bound over sets of *core indices* instead of packed masks —
    deliberately simple and obviously correct, used as the oracle the
    property tests compare :func:`repro.maxsat.hitting_set.
    minimum_cost_hitting_set` (the packed-int production search) against.
    Only suitable for small instances.
    """
    if not cores:
        return set(), 0

    sorted_cores = [sorted(core, key=lambda lit: weights.get(lit, 0)) for core in cores]
    best_set: Optional[Set[Hashable]] = None
    best_cost = sum(weights.get(lit, 0) for core in cores for lit in core) + 1

    def search(chosen: Set[Hashable], cost: int, unhit: Set[int]) -> None:
        nonlocal best_set, best_cost
        if cost >= best_cost:
            return
        if not unhit:
            best_set, best_cost = set(chosen), cost
            return
        core_index = min(unhit, key=lambda i: len(sorted_cores[i]))
        for element in sorted_cores[core_index]:
            new_cost = cost + weights.get(element, 0)
            if new_cost >= best_cost:
                continue
            still_unhit = {i for i in unhit if element not in cores[i]}
            chosen.add(element)
            search(chosen, new_cost, still_unhit)
            chosen.discard(element)

    search(set(), 0, set(range(len(cores))))
    assert best_set is not None  # every core is non-empty -> some cover exists
    return best_set, best_cost


# Re-exported for the solver layer; intentionally a List alias so callers can
# type against MutableSequence[int] without importing array directly.
AssignBuffer = MutableSequence[int]
