"""Dispatchable compute kernels for the library's hot inner loops.

The analysis layers above this package (BDD evaluation, SAT propagation, the
hitting-set search, sweeps, monitoring) are pure-python by design; this
package concentrates their hot loops behind one **dispatch seam** so a single
choice — made once, at session construction — selects the fastest available
implementation *tier* without changing any semantics:

``numpy``
    Vectorised batch kernels (scenario-grid BDD evaluation as one forward
    pass per node over the whole grid; MaxSAT re-rank scoring as one int64
    matmul per batch).  Only available when numpy is importable and not
    disabled via ``REPRO_NO_NUMPY=1``.
``array``
    Stdlib :mod:`array`-module buffers: contiguous ``float``/``int`` storage,
    no third-party dependency.
``python``
    Plain-list reference implementation.  Kept permanently as the oracle the
    test suite compares the other tiers against.

All tiers perform the *identical IEEE-754 operation sequence* per BDD node
(``p * P(high) + (1 - p) * P(low)`` in children-first order), so results are
bit-for-bit equal across tiers — canonical reports do not depend on which
tier ran.  The MaxSAT re-rank kernels (:mod:`repro.kernels.rerank`) operate
on the solver's *scaled integer* weights and are exact on every tier by
construction.

Selection: :func:`select` resolves ``None``/``"auto"`` to the best available
tier (numpy → array → python).  The environment variable ``REPRO_KERNEL``
overrides the default, and ``analyze --kernel`` / ``AnalysisSession(
kernel_tier=...)`` override both.  The chosen tier is surfaced in
``AnalysisReport.profile["kernel"]`` and ``analyze --profile`` output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.kernels import bdd_eval, rerank
from repro.numerics import HAVE_NUMPY

__all__ = [
    "KERNEL_ENV",
    "KernelSuite",
    "available_tiers",
    "batch_probability_of_bdd",
    "select",
]

#: Environment override for the default kernel tier.
KERNEL_ENV = "REPRO_KERNEL"


@dataclass(frozen=True)
class KernelSuite:
    """The kernel implementations of one tier, resolved once via :func:`select`."""

    name: str
    #: Batch BDD evaluation: (flat form, per-scenario probability rows in
    #: ``flat.events`` order) -> per-scenario P(top) floats.
    eval_bdd_batch: Callable[..., List[float]]
    #: MaxSAT re-rank scoring: (candidate event-index lists, scenarios×events
    #: scaled-weight rows) -> candidates×scenarios integer score matrix.
    score_candidates: Callable[..., List[List[int]]]
    #: Disjoint-core packing bound: (disjoint core event-index lists,
    #: scaled-weight rows) -> per-scenario hitting-set cost lower bound.
    greedy_lower_bound: Callable[..., List[int]]


_SUITES = {
    "python": KernelSuite(
        name="python",
        eval_bdd_batch=bdd_eval.eval_bdd_batch_python,
        score_candidates=rerank.score_candidates_python,
        greedy_lower_bound=rerank.greedy_lower_bound_python,
    ),
    "array": KernelSuite(
        name="array",
        eval_bdd_batch=bdd_eval.eval_bdd_batch_array,
        score_candidates=rerank.score_candidates_array,
        greedy_lower_bound=rerank.greedy_lower_bound_array,
    ),
    "numpy": KernelSuite(
        name="numpy",
        eval_bdd_batch=bdd_eval.eval_bdd_batch_numpy,
        score_candidates=rerank.score_candidates_numpy,
        greedy_lower_bound=rerank.greedy_lower_bound_numpy,
    ),
}

_PREFERENCE = ("numpy", "array", "python")


def available_tiers() -> Tuple[str, ...]:
    """Usable tiers on this interpreter, fastest first."""
    return _PREFERENCE if HAVE_NUMPY else _PREFERENCE[1:]


def select(tier: Optional[str] = None) -> KernelSuite:
    """Resolve a kernel tier name to its :class:`KernelSuite`.

    ``None`` or ``"auto"`` picks the fastest available tier, honouring the
    ``REPRO_KERNEL`` environment override first.  Explicit names are
    validated: requesting ``"numpy"`` without numpy raises
    :class:`~repro.exceptions.ConfigurationError` rather than silently
    downgrading.
    """
    if tier is None or tier == "auto":
        tier = os.environ.get(KERNEL_ENV) or None
    if tier is None or tier == "auto":
        return _SUITES[available_tiers()[0]]
    if tier not in _SUITES:
        raise ConfigurationError(
            f"unknown kernel tier {tier!r}; expected one of "
            f"{', '.join(sorted(_SUITES))} or 'auto'"
        )
    if tier == "numpy" and not HAVE_NUMPY:
        raise ConfigurationError(
            "kernel tier 'numpy' requested but numpy is unavailable "
            "(not installed, or disabled via REPRO_NO_NUMPY=1)"
        )
    return _SUITES[tier]


def batch_probability_of_bdd(
    suite: KernelSuite,
    function,
    probability_maps: Sequence[Mapping[str, float]],
) -> List[float]:
    """Evaluate P(top) of one compiled BDD for a batch of scenarios.

    ``probability_maps`` holds one event-probability mapping per scenario;
    the result is the per-scenario exact top-event probability, bit-identical
    to calling :func:`repro.bdd.probability.probability_of_bdd` in a loop.
    """
    from repro.bdd.probability import flatten_bdd

    flat = flatten_bdd(function)
    rows = flat.probability_rows(probability_maps)
    return suite.eval_bdd_batch(flat, rows)
