"""Batched MaxSAT re-rank scoring kernels (one per dispatch tier).

A weight-only sweep re-optimises the *same* implicit hitting set problem
under many weight vectors.  Everything weight-independent — the unsat cores,
the pooled candidate cut sets, their feasibility verdicts — is computed once
by :class:`repro.maxsat.incremental.IncrementalMaxSATSession`; what remains
per scenario is pure integer scoring, and that is what these kernels batch:

* :func:`score_candidates_*` — the cost of every pooled candidate under every
  scenario in one pass.  Inputs are a candidate incidence structure (each
  candidate as a sorted list of event-column indices) and a
  ``scenarios × events`` matrix of *scaled integer* weights; the output is the
  ``candidates × scenarios`` score matrix.  On the numpy tier this is a single
  int64 matmul of the 0/1 incidence matrix against the weight matrix.
* :func:`greedy_lower_bound_*` — the disjoint-core packing bound.  Given a
  family of pairwise-disjoint cores (as event-column index lists, selected
  once per core state by the session), any hitting set must pay at least the
  cheapest element of each core, so ``LB_k = Σ_core min_{e ∈ core} W[k][e]``
  lower-bounds the scenario's minimum hitting-set cost.  The numpy tier turns
  the inner ``min`` into one vectorised column-wise reduction per core.

All arithmetic is on Python/``int64`` integers (the solver's scaled-weight
domain), so every tier returns **identical** exact values — there is no
floating-point divergence to manage.  The ``python`` tier is the oracle the
property tests compare the others against.

The numpy tier delegates to the reference implementation when a weight could
overflow signed 64-bit accumulation (absurdly large ``precision`` settings);
results stay exact either way.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

from repro.numerics import require_numpy

__all__ = [
    "greedy_lower_bound_array",
    "greedy_lower_bound_numpy",
    "greedy_lower_bound_python",
    "score_candidates_array",
    "score_candidates_numpy",
    "score_candidates_python",
]

#: Largest per-event scaled weight the numpy tier accepts: a full row sum must
#: stay within int64, so the bound leaves ~2^16 headroom for the event count.
_INT64_SAFE_WEIGHT = 1 << 46


def score_candidates_python(
    candidates: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[List[int]]:
    """Reference tier: exact integer candidate scores, plain nested loops.

    ``candidates[i]`` lists the event-column indices of pooled candidate
    ``i``; ``rows[k]`` is scenario ``k``'s scaled-weight row.  Returns the
    ``candidates × scenarios`` score matrix as nested lists.
    """
    out: List[List[int]] = []
    for candidate in candidates:
        members = list(candidate)
        out.append([sum(row[j] for j in members) for row in rows])
    return out


def score_candidates_array(
    candidates: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[List[int]]:
    """Stdlib tier: contiguous ``array('q')`` score buffers per candidate.

    Same exact integers as the reference tier; the signed 64-bit buffers keep
    the score matrix compact on wide scenario batches.
    """
    out: List[List[int]] = []
    num_rows = len(rows)
    for candidate in candidates:
        members = list(candidate)
        scores = array("q", bytes(8 * num_rows))
        for position, row in enumerate(rows):
            scores[position] = sum(row[j] for j in members)
        out.append(list(scores))
    return out


def score_candidates_numpy(
    candidates: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[List[int]]:
    """numpy tier: one int64 matmul scores every (candidate, scenario) pair."""
    np = require_numpy("the numpy kernel tier")
    if not candidates:
        return []
    if not rows:
        return [[] for _ in candidates]
    if max((max(row) if row else 0) for row in rows) > _INT64_SAFE_WEIGHT:
        return score_candidates_python(candidates, rows)
    weights = np.asarray(rows, dtype=np.int64)  # scenarios × events
    incidence = np.zeros((len(candidates), weights.shape[1]), dtype=np.int64)
    for index, candidate in enumerate(candidates):
        for j in candidate:
            incidence[index, j] = 1
    return (incidence @ weights.T).tolist()


def greedy_lower_bound_python(
    cores: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[int]:
    """Reference tier: per-scenario disjoint-core packing bound."""
    members = [list(core) for core in cores]
    return [sum(min(row[j] for j in core) for core in members) for row in rows]


def greedy_lower_bound_array(
    cores: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[int]:
    """Stdlib tier: the packing bound accumulated in an ``array('q')`` buffer."""
    members = [list(core) for core in cores]
    totals = array("q", bytes(8 * len(rows)))
    for position, row in enumerate(rows):
        totals[position] = sum(min(row[j] for j in core) for core in members)
    return list(totals)


def greedy_lower_bound_numpy(
    cores: Sequence[Sequence[int]], rows: Sequence[Sequence[int]]
) -> List[int]:
    """numpy tier: one vectorised column-wise ``min`` per disjoint core."""
    np = require_numpy("the numpy kernel tier")
    if not rows:
        return []
    if not cores:
        return [0] * len(rows)
    if max((max(row) if row else 0) for row in rows) > _INT64_SAFE_WEIGHT:
        return greedy_lower_bound_python(cores, rows)
    weights = np.asarray(rows, dtype=np.int64)  # scenarios × events
    totals = np.zeros(weights.shape[0], dtype=np.int64)
    for core in cores:
        totals += weights[:, list(core)].min(axis=1)
    return totals.tolist()
