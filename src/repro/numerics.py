"""Optional-numpy gate: one place deciding whether numpy is available.

The core library is dependency-free by design; numpy is an *optional*
acceleration and numerics dependency (the ``numerics``/``perf`` extra in
``pyproject.toml``).  Every module that can use numpy imports it through this
gate instead of directly::

    from repro.numerics import np, HAVE_NUMPY

When numpy is installed, ``np`` is the real module.  When it is not, ``np``
is a proxy whose every attribute access raises
:class:`~repro.exceptions.MissingDependencyError` with install instructions —
so importing :mod:`repro.uncertainty`, :mod:`repro.markov` or
:mod:`repro.fta` always succeeds, and only actually *calling* a
numpy-dependent feature fails, with a clear error instead of an
``ImportError`` deep inside a package ``__init__``.

Setting the environment variable ``REPRO_NO_NUMPY=1`` makes the gate treat
numpy as absent even when it is importable.  This is how CI proves the
pure-python reference paths (kernel tier ``python``, graceful degradation of
the numerics modules) stay green without maintaining a separate
no-numpy virtualenv.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.exceptions import MissingDependencyError

__all__ = ["HAVE_NUMPY", "np", "require_numpy"]

#: Environment switch: treat numpy as unavailable even if importable.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

_numpy: Optional[Any] = None
if not os.environ.get(NO_NUMPY_ENV):
    try:  # pragma: no cover - exercised via both CI variants
        import numpy as _numpy_module

        _numpy = _numpy_module
    except ImportError:  # pragma: no cover
        _numpy = None

#: True when numpy is importable and not disabled via ``REPRO_NO_NUMPY``.
HAVE_NUMPY: bool = _numpy is not None

_INSTALL_HINT = (
    "numpy is not installed (or is disabled via "
    f"{NO_NUMPY_ENV}=1); install it with `pip install numpy` or the packaged "
    "extra `pip install mpmcs4fta[numerics]`"
)


class _MissingNumpy:
    """Stand-in for the numpy module that fails loudly on first use."""

    def __getattr__(self, name: str) -> Any:
        raise MissingDependencyError(f"numpy.{name} was accessed, but {_INSTALL_HINT}")

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<numpy unavailable>"


#: The numpy module when available, else a loud :class:`_MissingNumpy` proxy.
np: Any = _numpy if _numpy is not None else _MissingNumpy()


def require_numpy(feature: str) -> Any:
    """Return the numpy module, or raise a clear error naming ``feature``.

    Call this at the top of public entry points whose whole body depends on
    numpy, so callers get one actionable error up front rather than a proxy
    failure mid-computation.
    """
    if _numpy is None:
        raise MissingDependencyError(f"{feature} requires numpy, but {_INSTALL_HINT}")
    return _numpy
